"""Serial backend — the reference semantics for every pipeline phase.

This is the original CHAOS-style implementation: index analysis walks a
Python dict one key at a time, schedule generation and translation
lookups visit every communicating ``(p, q)`` rank pair with Python
loops, and the executor packs one small numpy payload per pair through
:meth:`Machine.alltoallv`.  It is deliberately unclever — the behaviour
(results, traffic statistics, clock charges) of every other backend is
defined as "whatever this one does".  The *plans* it emits are still
CSR-native: per-pair payloads are zero-copy views of the flat buffers,
never nested Python lists.

Like every backend, it receives a pre-validated
:class:`~repro.core.context.ExecutionContext` plus arguments: the
dispatching wrappers in :mod:`repro.core.inspector`,
:mod:`repro.core.executor` et al. perform the bounds and shape checks
before any backend runs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.hashtable import DictKeyStore


@register_backend
class SerialBackend(Backend):
    """Reference per-key / per-rank-pair implementation of every phase."""

    name = "serial"

    # ------------------------------------------------------------------
    # inspector phase: index analysis
    # ------------------------------------------------------------------
    def make_key_store(self):
        return DictKeyStore()

    def chaos_hash(self, ctx, htables, ttable, idx, stamp, category):
        from repro.core.inspector import _INSERT_COST, _PROBE_COST

        machine = ctx.machine
        # Step 1: probe; find the uniques each rank has never seen.
        new_per_rank: list[np.ndarray] = []
        for p in machine.ranks():
            machine.charge_memops(p, _PROBE_COST * idx[p].size, category)
            new_per_rank.append(htables[p].missing_uniques(idx[p]))

        # Step 2: translate only the new uniques (collective; the
        # expensive part the hash table amortizes away in adaptive runs).
        owners, offsets = ttable.dereference(ctx, new_per_rank,
                                             category=category)

        # Step 3: insert and stamp.
        localized: list[np.ndarray] = []
        for p in machine.ranks():
            ht = htables[p]
            new = new_per_rank[p]
            machine.charge_memops(p, _INSERT_COST * new.size, category)
            ht.insert_translated(new, owners[p], offsets[p])
            if idx[p].size:
                uniq, cnt = np.unique(idx[p], return_counts=True)
                slots = ht.lookup_slots(uniq)
                ht.stamp_slots(slots, stamp, counts=cnt)
                machine.charge_memops(p, uniq.size, category)
                localized.append(ht.localize(idx[p]))
            else:
                ht.registry.acquire(stamp)  # stamp exists on empty ranks
                localized.append(np.zeros(0, dtype=np.int64))
        return localized

    # ------------------------------------------------------------------
    # inspector phase: schedule generation
    # ------------------------------------------------------------------
    def build_schedule(self, ctx, htables, expr, category):
        from repro.core.compiled import offsets_from_counts
        from repro.core.schedule import Schedule

        machine = ctx.machine
        n = machine.n_ranks
        z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731

        # Per rank: select stamped off-processor entries, group by owner
        # with a stable argsort, and keep the grouped stream *flat* — the
        # owner-ascending request stream is already the CSR receive
        # storage, so no per-pair list assembly happens here.
        counts = np.zeros((n, n), dtype=np.int64)  # [p][q]: p requests of q
        requests: list[np.ndarray] = []
        recv_slots: list[np.ndarray] = []
        recv_offsets: list[np.ndarray] = []
        ghost_size = [0] * n

        for p in machine.ranks():
            ht = htables[p]
            if isinstance(expr, str):
                sel_expr = ht.expr(expr)
            else:
                sel_expr = expr
            slots = ht.select(sel_expr, off_processor_only=True)
            machine.charge_memops(p, ht.n_entries + 2 * slots.size, category)
            ghost_size[p] = ht.ghost_capacity()
            if slots.size == 0:
                requests.append(z())
                recv_slots.append(z())
                recv_offsets.append(offsets_from_counts(counts[p]))
                continue
            owners = ht.proc[slots]
            order = np.argsort(owners, kind="stable")
            slots = slots[order]
            counts[p] = np.bincount(owners[order], minlength=n)
            requests.append(ht.off[slots].astype(np.int64))
            recv_slots.append(ht.buf[slots].astype(np.int64))
            recv_offsets.append(offsets_from_counts(counts[p]))

        # Size exchange (schedule setup), then the request exchange: the
        # reference walks every (p, q) pair, but each payload is a
        # zero-copy view of the flat request stream.
        machine.alltoall_lengths(counts.tolist(), tag="sched_sizes",
                                 category=category)
        send_payload = [
            [requests[p][recv_offsets[p][q]:recv_offsets[p][q + 1]]
             if counts[p][q] else None
             for q in machine.ranks()]
            for p in machine.ranks()
        ]
        received = machine.alltoallv(send_payload, tag="sched_requests",
                                     category=category)
        # Each receiver's flat send buffer is one concatenation of the
        # request segments it was sent (sources ascending).
        send_indices: list[np.ndarray] = []
        send_offsets: list[np.ndarray] = []
        for q in machine.ranks():
            send_offsets.append(offsets_from_counts(counts[:, q]))
            parts = [np.asarray(received[q][p], dtype=np.int64)
                     for p in machine.ranks()
                     if received[q][p] is not None and np.size(received[q][p])]
            if parts:
                send_indices.append(np.concatenate(parts))
                machine.charge_memops(q, int(counts[:, q].sum()), category)
            else:
                send_indices.append(z())
        return Schedule(
            n_ranks=n,
            send_indices=send_indices,
            send_offsets=send_offsets,
            recv_slots=recv_slots,
            recv_offsets=recv_offsets,
            ghost_size=ghost_size,
        )

    # ------------------------------------------------------------------
    # inspector phase: translation-table lookups
    # ------------------------------------------------------------------
    def translation_lookup(self, ctx, ttable, qs, category):
        from repro.core.translation import _ENTRY_BYTES

        m = ctx.machine
        if ttable.storage == "replicated":
            for p in m.ranks():
                m.charge_memops(p, qs[p].size, category)
            return
        use_cache = ttable.storage == "paged"
        request_counts = [[0] * m.n_ranks for _ in m.ranks()]
        for p in m.ranks():
            q = qs[p]
            if q.size == 0:
                continue
            if use_cache:
                pages = q // ttable.page_size
                cache = ttable._page_cache[p]
                uniq_pages = np.unique(pages)
                # admit touches residents, returns misses, and evicts
                # down to the context's byte budget (LRU) — evicted
                # pages re-charge their fetch on the next lookup
                missing = cache.admit(uniq_pages, ttable.page_budget(ctx))
                # only missing pages generate requests, whole pages return
                for pg in missing.tolist():
                    home = int(ttable._table_dist.owner(
                        np.array([min(pg * ttable.page_size,
                                      ttable.dist.n_global - 1)],
                                 dtype=np.int64)
                    )[0])
                    request_counts[p][home] += ttable.page_size
                m.charge_memops(p, q.size, category)  # local cache probes
            else:
                homes = ttable._table_dist.owner(q)
                uniq_homes, counts = np.unique(homes, return_counts=True)
                for h, c in zip(uniq_homes.tolist(), counts.tolist()):
                    request_counts[p][h] += int(c)
        # request: 8 bytes/index; reply: _ENTRY_BYTES per entry
        req = [
            [np.zeros(request_counts[p][h], dtype=np.int64)
             if request_counts[p][h] and p != h else None
             for h in m.ranks()]
            for p in m.ranks()
        ]
        m.alltoallv(req, tag="ttable_lookup_req", category=category)
        rep = [
            [np.zeros(request_counts[q][h] * _ENTRY_BYTES // 8,
                      dtype=np.int64)
             if request_counts[q][h] and q != h else None
             for q in m.ranks()]
            for h in m.ranks()
        ]
        m.alltoallv(rep, tag="ttable_lookup_rep", category=category)
        for h in m.ranks():
            served = sum(request_counts[p][h] for p in m.ranks())
            m.charge_memops(h, served, category)

    # ------------------------------------------------------------------
    # regular schedules
    # ------------------------------------------------------------------
    def gather(self, ctx, sched, data, ghosts, category):
        machine = ctx.machine
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            d = np.asarray(data[p])
            for q in machine.ranks():
                sel = sched.send_view(p, q)
                if sel.size:
                    send[p][q] = d[sel]
                    machine.charge_copyops(p, sel.size, category)
        received = machine.alltoallv(send, tag="gather", category=category)
        for p in machine.ranks():
            g = ghosts[p]
            for q in machine.ranks():
                got = received[p][q]
                slots = sched.recv_view(p, q)
                if slots.size:
                    g[slots] = got
                    machine.charge_copyops(p, slots.size, category)
        return ghosts

    def scatter(self, ctx, sched, data, ghosts, op: Callable | None,
                category) -> None:
        machine = ctx.machine
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            g = np.asarray(ghosts[p])
            for q in machine.ranks():
                slots = sched.recv_view(p, q)
                if slots.size:
                    send[p][q] = g[slots]
                    machine.charge_copyops(p, slots.size, category)
        received = machine.alltoallv(send, tag="scatter", category=category)
        for p in machine.ranks():
            d = data[p]
            for q in machine.ranks():
                got = received[p][q]
                sel = sched.send_view(p, q)
                if sel.size:
                    if op is None:
                        d[sel] = got
                    else:
                        op.at(d, sel, got)
                    machine.charge_copyops(p, sel.size, category)

    # ------------------------------------------------------------------
    # light-weight schedules
    # ------------------------------------------------------------------
    def scatter_append(self, ctx, sched, values, category):
        machine = ctx.machine
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            v = np.asarray(values[p])
            for q in machine.ranks():
                sel = sched.send_view(p, q)
                if sel.size:
                    send[p][q] = v[sel]
            machine.charge_copyops(p, v.shape[0], category)
        received = machine.alltoallv(send, tag="scatter_append",
                                     category=category)
        out: list[np.ndarray] = []
        for p in machine.ranks():
            parts = []
            # kept-local first, then arrivals by source rank:
            if received[p][p] is not None and np.size(received[p][p]):
                parts.append(np.asarray(received[p][p]))
            for q in machine.ranks():
                if q == p:
                    continue
                got = received[p][q]
                if got is not None and np.size(got):
                    parts.append(np.asarray(got))
                    machine.charge_copyops(p, np.shape(got)[0], category)
            if parts:
                out.append(np.concatenate(parts, axis=0))
            else:
                v = np.asarray(values[p])
                out.append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
        return out

    def scatter_append_multi(self, ctx, sched, arrays, category):
        machine = ctx.machine
        n = machine.n_ranks
        n_attr = len(arrays)
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            expected = int(sched.send_sizes(p).sum())
            for q in machine.ranks():
                sel = sched.send_view(p, q)
                if sel.size:
                    send[p][q] = tuple(
                        np.asarray(arrays[k][p])[sel] for k in range(n_attr)
                    )
            machine.charge_copyops(p, n_attr * expected, category)
        received = machine.alltoallv(send, tag="scatter_append",
                                     category=category)
        out: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
        for p in machine.ranks():
            parts: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
            source_order = [p] + [q for q in machine.ranks() if q != p]
            got_any = False
            for q in source_order:
                got = received[p][q]
                if got is None:
                    continue
                got_any = True
                for k in range(n_attr):
                    parts[k].append(np.asarray(got[k]))
                if q != p:
                    machine.charge_copyops(p, n_attr * np.shape(got[0])[0],
                                           category)
            for k in range(n_attr):
                if got_any and parts[k]:
                    out[k].append(np.concatenate(parts[k], axis=0))
                else:
                    v = np.asarray(arrays[k][p])
                    out[k].append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
        return out

    # ------------------------------------------------------------------
    # remap plans
    # ------------------------------------------------------------------
    def remap_array(self, ctx, plan, data, category):
        machine = ctx.machine
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            d = np.asarray(data[p])
            for q in machine.ranks():
                sel = plan.send_view(p, q)
                if sel.size:
                    send[p][q] = d[sel]
                    machine.charge_copyops(p, sel.size, category)
        received = machine.alltoallv(send, tag="remap_data",
                                     category=category)
        out: list[np.ndarray] = []
        for p in machine.ranks():
            d = np.asarray(data[p])
            shape = (plan.new_sizes[p],) + d.shape[1:]
            new_local = np.zeros(shape, dtype=d.dtype)
            for q in machine.ranks():
                got = received[p][q]
                sel = plan.place_view(p, q)
                if sel.size:
                    new_local[sel] = got
                    machine.charge_copyops(p, sel.size, category)
            out.append(new_local)
        return out
