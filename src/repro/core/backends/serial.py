"""Serial pair-loop executor backend — the reference semantics.

This is the original CHAOS-style executor: every communicating ``(p, q)``
rank pair is visited with a Python loop, packing one small numpy payload
per pair and shipping the nested per-pair lists through
:meth:`Machine.alltoallv`.  It is deliberately unclever — the behaviour
(results, traffic statistics, clock charges) of every other backend is
defined as "whatever this one does".

Like every backend, it receives pre-validated inputs: the dispatching
wrappers in :mod:`repro.core.executor` et al. perform the bounds and
shape checks before any backend runs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.backends.base import Backend, register_backend


@register_backend
class SerialBackend(Backend):
    """Pair-loop data transportation (one payload per rank pair)."""

    name = "serial"

    # ------------------------------------------------------------------
    # regular schedules
    # ------------------------------------------------------------------
    def gather(self, machine, sched, data, ghosts, category):
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            d = np.asarray(data[p])
            for q in machine.ranks():
                sel = sched.send_indices[p][q]
                if sel.size:
                    send[p][q] = d[sel]
                    machine.charge_copyops(p, sel.size, category)
        received = machine.alltoallv(send, tag="gather", category=category)
        for p in machine.ranks():
            g = ghosts[p]
            for q in machine.ranks():
                got = received[p][q]
                slots = sched.recv_slots[p][q]
                if slots.size:
                    g[slots] = got
                    machine.charge_copyops(p, slots.size, category)
        return ghosts

    def scatter(self, machine, sched, data, ghosts, op: Callable | None,
                category) -> None:
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            g = np.asarray(ghosts[p])
            for q in machine.ranks():
                slots = sched.recv_slots[p][q]
                if slots.size:
                    send[p][q] = g[slots]
                    machine.charge_copyops(p, slots.size, category)
        received = machine.alltoallv(send, tag="scatter", category=category)
        for p in machine.ranks():
            d = data[p]
            for q in machine.ranks():
                got = received[p][q]
                sel = sched.send_indices[p][q]
                if sel.size:
                    if op is None:
                        d[sel] = got
                    else:
                        op.at(d, sel, got)
                    machine.charge_copyops(p, sel.size, category)

    # ------------------------------------------------------------------
    # light-weight schedules
    # ------------------------------------------------------------------
    def scatter_append(self, machine, sched, values, category):
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            v = np.asarray(values[p])
            for q in machine.ranks():
                sel = sched.send_sel[p][q]
                if sel.size:
                    send[p][q] = v[sel]
            machine.charge_copyops(p, v.shape[0], category)
        received = machine.alltoallv(send, tag="scatter_append",
                                     category=category)
        out: list[np.ndarray] = []
        for p in machine.ranks():
            parts = []
            # kept-local first, then arrivals by source rank:
            if received[p][p] is not None and np.size(received[p][p]):
                parts.append(np.asarray(received[p][p]))
            for q in machine.ranks():
                if q == p:
                    continue
                got = received[p][q]
                if got is not None and np.size(got):
                    parts.append(np.asarray(got))
                    machine.charge_copyops(p, np.shape(got)[0], category)
            if parts:
                out.append(np.concatenate(parts, axis=0))
            else:
                v = np.asarray(values[p])
                out.append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
        return out

    def scatter_append_multi(self, machine, sched, arrays, category):
        n = machine.n_ranks
        n_attr = len(arrays)
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            expected = int(sched.send_sizes(p).sum())
            for q in machine.ranks():
                sel = sched.send_sel[p][q]
                if sel.size:
                    send[p][q] = tuple(
                        np.asarray(arrays[k][p])[sel] for k in range(n_attr)
                    )
            machine.charge_copyops(p, n_attr * expected, category)
        received = machine.alltoallv(send, tag="scatter_append",
                                     category=category)
        out: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
        for p in machine.ranks():
            parts: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
            source_order = [p] + [q for q in machine.ranks() if q != p]
            got_any = False
            for q in source_order:
                got = received[p][q]
                if got is None:
                    continue
                got_any = True
                for k in range(n_attr):
                    parts[k].append(np.asarray(got[k]))
                if q != p:
                    machine.charge_copyops(p, n_attr * np.shape(got[0])[0],
                                           category)
            for k in range(n_attr):
                if got_any and parts[k]:
                    out[k].append(np.concatenate(parts[k], axis=0))
                else:
                    v = np.asarray(arrays[k][p])
                    out[k].append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
        return out

    # ------------------------------------------------------------------
    # remap plans
    # ------------------------------------------------------------------
    def remap_array(self, machine, plan, data, category):
        n = machine.n_ranks
        send = [[None] * n for _ in machine.ranks()]
        for p in machine.ranks():
            d = np.asarray(data[p])
            for q in machine.ranks():
                sel = plan.send_sel[p][q]
                if sel.size:
                    send[p][q] = d[sel]
                    machine.charge_copyops(p, sel.size, category)
        received = machine.alltoallv(send, tag="remap_data",
                                     category=category)
        out: list[np.ndarray] = []
        for p in machine.ranks():
            d = np.asarray(data[p])
            shape = (plan.new_sizes[p],) + d.shape[1:]
            new_local = np.zeros(shape, dtype=d.dtype)
            for q in machine.ranks():
                got = received[p][q]
                sel = plan.place_sel[p][q]
                if sel.size:
                    new_local[sel] = got
                    machine.charge_copyops(p, sel.size, category)
            out.append(new_local)
        return out
