"""Phase-complete backend protocol and registry.

A :class:`Backend` implements every interpreter-bound step of the CHAOS
pipeline, spanning both halves of the inspector/executor split:

* **inspector phase** — index analysis (``chaos_hash`` probing/insertion
  via the backend's key store), localization, schedule generation from
  stamped hash tables, and translation-table lookup accounting;
* **executor phase** — gather, scatter, scatter-with-op, append-order
  particle migration, and remap application.

The module-level functions in :mod:`repro.core.inspector`,
:mod:`repro.core.schedule`, :mod:`repro.core.translation`,
:mod:`repro.core.executor`, :mod:`repro.core.lightweight` and
:mod:`repro.core.remap` validate arguments and then dispatch to the
backend carried by their :class:`~repro.core.context.ExecutionContext`,
so every backend sees pre-validated inputs and only has to do the work
and charge the machine.  Backend methods receive that same context as
their first argument (``ctx.machine`` is the machine to charge).

Four implementations ship with the runtime:

* ``serial`` — the reference semantics: a Python dict operation per hash
  key, a Python loop per communicating ``(p, q)`` rank pair;
* ``vectorized`` — the default: a batched open-addressed key store,
  argsort/bincount schedule grouping, count-matrix communication
  accounting (:meth:`Machine.exchange_compiled`), and compiled flat
  executor plans (:mod:`repro.core.compiled`);
* ``threaded`` — the vectorized per-rank kernels with the rank loops of
  the executor/lightweight/remap phases (and the owner-grouped schedule
  build) fanned out over a per-context thread pool;
* ``multiprocess`` — the same rank kernels executed by a per-context
  *process* pool over shared-memory views of the compiled plan buffers
  and rank-partitioned data, sidestepping the GIL entirely.

Backends are also *resource owners*: :meth:`Backend.open` creates a
per-context :class:`BackendResources` handle (thread pools, scratch
buffers) when an :class:`~repro.core.context.ExecutionContext` is
constructed, and :meth:`Backend.close` tears it down deterministically
when the owning component closes the context.  The default handle owns
nothing, so the serial and vectorized backends pay no lifecycle cost.

Backends must be *observationally identical*: same results bitwise
(localized indices, ghost-slot assignment, schedules, executor data),
same traffic statistics message-for-message, same virtual-time totals
(up to float summation order).  ``tests/test_backends.py`` and
``tests/test_inspector_backends.py`` enforce this on randomized
workloads.  New execution strategies (sharded, alternative transports)
plug in via :func:`register_backend` without touching applications.
"""

from __future__ import annotations

import os
import threading
import weakref
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Callable

import numpy as np

#: environment variable consulted for the initial default backend
BACKEND_ENV_VAR = "REPRO_BACKEND"


def pool_width(n_ranks: int) -> int:
    """Worker count for a rank pool: one per rank, capped by the host."""
    return max(1, min(int(n_ranks), os.cpu_count() or 1))


def collect_futures(futures) -> list:
    """Await futures in submission order; clean up if any kernel fails.

    On the first failure the not-yet-started futures are cancelled and
    the in-flight ones drained, so no worker is still writing into the
    caller's arrays (or shared buffers) after the exception propagates.
    """
    try:
        return [f.result() for f in futures]
    except BaseException:
        for f in futures:
            f.cancel()
        for f in futures:
            if not f.cancelled():
                f.exception()
        raise


class BackendResources:
    """Per-context resource handle created by :meth:`Backend.open`.

    One handle is opened when an
    :class:`~repro.core.context.ExecutionContext` is constructed and
    closed exactly once — by ``ctx.close()`` (usually via the owning
    component's ``close()``), or as a garbage-collection safety net for
    handles whose subclass registers a finalizer.  ``close()`` is
    idempotent.  The base handle owns nothing; backends with real
    resources (e.g. the threaded backend's worker pool) subclass it and
    override :meth:`_release`.
    """

    __slots__ = ("backend", "_closed", "fused_kernels", "__weakref__")

    def __init__(self, backend: "Backend"):
        self.backend = backend
        self._closed = False
        #: dtype-specialized fused apply kernels, keyed ``(dtype, op
        #: name)`` — populated at ``open(ctx)`` time by backends that
        #: execute fused pipelines in one pass (``None`` means every
        #: stage uses the generic numpy fallback)
        self.fused_kernels: dict | None = None

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release owned resources; safe to call more than once."""
        if not self._closed:
            self._closed = True
            self._release()

    def _release(self) -> None:
        """Subclass hook: actually free the owned resources."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (f"{type(self).__name__}(backend={self.backend.name!r}, "
                f"{state})")


class PooledResources(BackendResources):
    """Per-context worker pool plus its GC safety-net finalizer.

    One audited implementation of the pool lifecycle shared by the
    threaded and multiprocess backends: subclasses provide
    :meth:`_make_pool`; the pool is created through :meth:`ensure_pool`
    (eagerly at construction unless ``eager=False`` — process pools
    defer the expensive worker launch until first use).  Deterministic
    teardown is ``ctx.close()``; a :func:`weakref.finalize` callback
    backs it up so a context dropped without ``close()`` cannot leak OS
    threads or processes.  The finalizer closes over a small shared
    state dict — never over ``self``, which would make the handle
    immortal.  Subclasses owning more than the pool stash it in
    ``_state`` and override :meth:`_emergency` / :meth:`_release_extra`.
    """

    __slots__ = ("n_workers", "_state", "_finalizer")

    def __init__(self, owner: "Backend", n_ranks: int, eager: bool = True):
        super().__init__(owner)
        self.n_workers = pool_width(n_ranks)
        self._state: dict = {"pool": None}
        self._finalizer = weakref.finalize(
            self, type(self)._emergency, self._state
        )
        if eager:
            self.ensure_pool()

    @property
    def pool(self):
        """The worker pool, or ``None`` when created lazily and unused."""
        return self._state["pool"]

    def ensure_pool(self):
        """Create the pool on first use; idempotent thereafter."""
        pool = self._state["pool"]
        if pool is None:
            pool = self._state["pool"] = self._make_pool()
        return pool

    def _make_pool(self):
        """Subclass hook: build the executor the rank loops fan over."""
        raise NotImplementedError

    @staticmethod
    def _shutdown_pool(state: dict, wait: bool) -> None:
        pool = state.get("pool")
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=not wait)

    @classmethod
    def _emergency(cls, state: dict) -> None:
        """GC safety net (must not touch any resource-handle object)."""
        cls._shutdown_pool(state, wait=False)

    def _release(self) -> None:
        self._finalizer.detach()
        self._shutdown_pool(self._state, wait=True)
        self._release_extra()

    def _release_extra(self) -> None:
        """Subclass hook: free non-pool resources after pool shutdown."""


class Backend(ABC):
    """Inspector + executor execution strategy.

    All methods receive an :class:`~repro.core.context.ExecutionContext`
    whose ``backend`` is this instance, plus pre-validated arguments
    (see the dispatching wrappers in :mod:`repro.core.inspector`,
    :mod:`repro.core.executor` et al.), and must charge ``ctx.machine``
    exactly as the serial reference does.
    """

    #: registry key; subclasses override
    name: str = "abstract"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, ctx) -> BackendResources:
        """Create this backend's per-context resources.

        Called once from :class:`ExecutionContext` construction; the
        returned handle rides on ``ctx.resources`` and is torn down by
        :meth:`close` when the owning component closes the context.
        Default: an empty handle (no pools, no buffers).
        """
        return BackendResources(self)

    def close(self, resources: BackendResources) -> None:
        """Tear down a handle produced by :meth:`open` (idempotent)."""
        resources.close()

    def _owned_resources(self, ctx, cls: type) -> BackendResources:
        """The context's resource handle, verified owned, open, and of
        type ``cls`` — the shared entry check of every resource-backed
        ``_run_ranks`` implementation."""
        res = ctx.resources
        if not isinstance(res, cls) or res.backend is not self:
            raise RuntimeError(
                f"{self.name} backend invoked on a context whose resources "
                f"it does not own; build the context with "
                f"ExecutionContext.resolve(machine, {self.name!r})"
            )
        if res.closed:
            raise RuntimeError(
                "ExecutionContext already closed: its worker pool was shut "
                "down; create a fresh context for new work"
            )
        return res

    # ------------------------------------------------------------------
    # inspector phase
    # ------------------------------------------------------------------
    @abstractmethod
    def make_key_store(self):
        """Fresh key store for a new :class:`IndexHashTable` (the
        global-index → slot map this backend analyses indices with)."""

    @abstractmethod
    def chaos_hash(self, ctx, htables, ttable, idx, stamp,
                   category: str):
        """Index analysis: enter one indirection array into the hash
        tables (translating only unseen indices), stamp every touched
        entry, return per-rank localized index arrays.  ``idx`` is
        pre-normalized to one int64 array per rank."""

    def localize(self, ctx, htables, idx, category: str):
        """Pure-lookup localization of already-hashed indirection
        arrays (the unchanged-array fast path).

        Concrete: the only backend-specific structure is the key store
        already attached to each table, so one implementation serves
        every backend.
        """
        from repro.core.inspector import _PROBE_COST

        machine = ctx.machine
        out = []
        for p in machine.ranks():
            arr = idx[p]
            machine.charge_memops(p, _PROBE_COST * arr.size, category)
            out.append(htables[p].localize(arr) if arr.size else arr)
        return out

    @abstractmethod
    def build_schedule(self, ctx, htables, expr, category: str):
        """``CHAOS_schedule``: group stamped off-processor entries by
        owner and run the request exchange; returns a Schedule."""

    @abstractmethod
    def translation_lookup(self, ctx, ttable, qs, category: str
                           ) -> None:
        """Charge the communication of a collective translation-table
        dereference under the table's storage policy (replicated /
        distributed / paged), including page-cache updates."""

    # ------------------------------------------------------------------
    # executor phase
    # ------------------------------------------------------------------
    @abstractmethod
    def gather(self, ctx, sched, data, ghosts, category: str):
        """Fill ``ghosts`` with off-processor elements; returns ``ghosts``."""

    @abstractmethod
    def scatter(self, ctx, sched, data, ghosts, op: Callable | None,
                category: str) -> None:
        """Return ghost values to owners; ``op=None`` overwrites,
        otherwise ``op.at`` combines (source-rank-ascending order)."""

    @abstractmethod
    def scatter_append(self, ctx, sched, values, category: str):
        """Move elements to destination ranks, appending kept-local first
        then arrivals by source rank; returns new per-rank arrays."""

    @abstractmethod
    def scatter_append_multi(self, ctx, sched, arrays, category: str):
        """Like :meth:`scatter_append` for several aligned attribute sets
        sharing one set of messages; returns ``out[k][p]``."""

    @abstractmethod
    def remap_array(self, ctx, plan, data, category: str):
        """Apply a remap plan to one per-rank array set; returns new
        arrays."""

    def run_fused(self, ctx, fused, binds, category: str) -> list:
        """Execute a fused pipeline; returns one result per stage.

        ``fused`` is a :class:`~repro.core.compiled.FusedPlan` whose
        stage chain the executor layer has already validated and deemed
        legal to fuse; ``binds`` aligns one
        :class:`~repro.core.compiled.StageBind` with each stage.  Stage
        results match the unfused primitives: ghost arrays for gather,
        ``None`` for scatter, fresh per-rank arrays for append/remap.

        This default is the *reference multi-pass implementation* (the
        serial backend's semantics): each stage runs through its own
        unfused primitive, in order.  One-pass backends override it but
        must stay bitwise-identical — same results, same traffic
        message-for-message, same per-rank clock sequences.
        """
        out = []
        for stage, bind in zip(fused.stages, binds):
            if stage.kind == "gather":
                out.append(self.gather(ctx, stage.sched, bind.sources,
                                       bind.dests, category))
            elif stage.kind == "scatter":
                self.scatter(ctx, stage.sched, bind.dests, bind.sources,
                             stage.op, category)
                out.append(None)
            elif stage.kind == "append":
                out.append(self.scatter_append(ctx, stage.sched,
                                               bind.sources, category))
            elif stage.kind == "remap":
                out.append(self.remap_array(ctx, stage.sched,
                                            bind.sources, category))
            else:  # pragma: no cover - FusedPlan validates kinds
                raise ValueError(f"unknown fused stage {stage.kind!r}")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, type[Backend]] = {}
_INSTANCES: dict[str, Backend] = {}
_default_name: str | None = None
#: guards the registry, the instance cache, and the process default —
#: the multi-tenant server resolves backends from many threads at once,
#: and the one-instance-per-name invariant (ExecutionContext compares
#: backends by identity) must hold under that concurrency.  Reentrant:
#: set_default_backend/default_backend call get_backend under the lock.
_REGISTRY_LOCK = threading.RLock()


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under ``cls.name`` (usable as decorator)."""
    name = getattr(cls, "name", None)
    if not name or name == Backend.name:
        raise ValueError(f"backend class {cls!r} must define a unique name")
    with _REGISTRY_LOCK:
        _REGISTRY[name] = cls
        _INSTANCES.pop(name, None)
    return cls


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (a copy: safe to iterate while
    other threads register)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Backend:
    """Instantiate (once) and return the backend registered as ``name``.

    Thread-safe: concurrent callers racing on an uninstantiated name
    all receive the same instance (double-checked under the module
    lock), so backend identity comparisons stay sound.
    """
    inst = _INSTANCES.get(name)  # fast path: steady state, no lock
    if inst is not None:
        return inst
    with _REGISTRY_LOCK:
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown backend {name!r}; available: "
                f"{available_backends()}"
            )
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = _INSTANCES[name] = _REGISTRY[name]()
        return inst


def set_default_backend(name: str) -> None:
    """Select the process-wide default backend by name (thread-safe)."""
    global _default_name
    with _REGISTRY_LOCK:
        get_backend(name)  # validate eagerly
        _default_name = name


def default_backend() -> Backend:
    """The current default backend.

    Resolution order: :func:`set_default_backend`, then the
    ``REPRO_BACKEND`` environment variable, then ``"vectorized"``.
    """
    with _REGISTRY_LOCK:
        name = (_default_name or os.environ.get(BACKEND_ENV_VAR)
                or "vectorized")
        return get_backend(name)


def resolve_backend(backend) -> Backend:
    """Coerce ``None`` / name / instance to a :class:`Backend`."""
    if backend is None:
        return default_backend()
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise TypeError(
        f"backend must be None, a name, or a Backend, got {backend!r}"
    )


@contextmanager
def use_backend(name: str):
    """Temporarily switch the default backend (tests, benchmarks).

    The swap and restore are lock-protected; the *default itself* is
    still process-wide state, so concurrent ``use_backend`` blocks in
    different threads interleave their defaults — server code passes
    backends explicitly per job instead of toggling the default.
    """
    global _default_name
    with _REGISTRY_LOCK:
        previous = _default_name
        set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        with _REGISTRY_LOCK:
            _default_name = previous


def row_nbytes(a: np.ndarray) -> int:
    """Bytes per element row of ``a`` — one moved element's wire size."""
    n = a.dtype.itemsize
    for dim in a.shape[1:]:
        n *= int(dim)
    return n
