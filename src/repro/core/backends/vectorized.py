"""Vectorized backend: batched inspector engine + compiled executor plans.

**Inspector half.**  Index analysis uses the open-addressed int64 key
store (:class:`~repro.core.hashtable.OpenAddressedKeyStore`): probing and
insertion of a whole indirection array run as a handful of numpy passes
instead of one dict operation per key, and localization reuses the
``np.unique`` inverse so each distinct index is translated once.
Schedule generation groups stamped entries by owner with a stable argsort
plus ``np.bincount`` and emits the CSR-native
:class:`~repro.core.schedule.Schedule` buffers directly — the owner-grouped
request stream *is* the receive storage, and each receiver's flat send
buffer is one concatenation of request segments, so no per-pair list is
ever assembled — while charging the size/request
exchanges straight from count matrices via
:meth:`Machine.exchange_compiled`; translation-table lookups build their
request/reply matrices the same way, with page-miss detection for
``paged`` storage done by ``np.isin`` against the sorted page cache.

**Executor half.**  Instead of visiting every ``(p, q)`` rank pair in
Python, this backend derives (once, cached) the machine-wide view of the
schedule's CSR buffers — the global send-stream → receive-stream
permutation of :mod:`repro.core.compiled` — and then executes each
collective with O(P) numpy calls.

The fast path goes further: because the simulated machine holds every
rank's data in one process, a whole collective is ONE flat gather.  The
plan caches *composed* scalar index vectors — pack selection ∘ global
permutation ∘ row→scalar expansion — keyed by the data layout, so a
steady-state executor round is essentially

    concat(data)  →  one fancy-gather  →  per-rank placement / ufunc.at

Accounting goes through :meth:`Machine.exchange_compiled`, which charges
clocks/traffic straight from the plan's count matrix.  Results are
bitwise identical to :class:`SerialBackend` — accumulation visits sources
in the same rank-ascending order the pair loop uses, and flattening rows
to scalars preserves each scalar's fold order — and traffic statistics
match message-for-message.  Inputs the flat layout cannot express
without changing semantics (per-rank dtype or row-shape mismatches,
where concatenation would promote values; non-contiguous arrays, where
raveling would copy) are delegated wholesale to the serial reference.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.backends.base import (
    Backend,
    BackendResources,
    register_backend,
    row_nbytes,
)
from repro.core.compiled import (
    compile_lightweight_schedule,
    compile_remap_plan,
    compile_schedule,
    offsets_from_counts,
)
from repro.core.hashtable import OpenAddressedKeyStore


def _flat_layout(arrays) -> tuple[tuple[int, ...], tuple[int, ...], int] | None:
    """(leading sizes, trailing shape, row width) when every per-rank
    array is C-contiguous with one dtype and row shape; else ``None``."""
    first = np.asarray(arrays[0])
    trailing = first.shape[1:]
    dtype = first.dtype
    k = 1
    for dim in trailing:
        k *= int(dim)
    sizes = []
    for a in arrays:
        a = np.asarray(a)
        if (a.shape[1:] != trailing or a.dtype != dtype
                or not a.flags.c_contiguous):
            return None
        sizes.append(a.shape[0])
    return tuple(sizes), trailing, k


def _serial():
    # resolved lazily to avoid a circular import at module load
    from repro.core.backends.serial import SerialBackend
    from repro.core.backends.base import get_backend
    return get_backend(SerialBackend.name)


# ----------------------------------------------------------------------
# dtype-specialized fused apply kernels
# ----------------------------------------------------------------------
def _fused_assign_generic(flat, st, lo, hi, dst):
    """Placement for any dtype: one composed fancy assign, straight from
    the flattened source concat into the destination slots."""
    dst[st.dst_index[lo:hi]] = flat[st.src_index[lo:hi]]


def _fused_assign_sorted(flat, st, lo, hi, dst):
    """float64/int64 fast path: the destination-sorted composed pair —
    stores land in ascending order, and when the rank's slots are dense
    the whole segment collapses to one contiguous write.  Bitwise-safe
    because the per-segment sort is stable (see ``_sort_segments``)."""
    seg = flat[st.sf[lo:hi]]
    if st.sp is None:
        dst[:hi - lo] = seg
    else:
        dst[st.sp[lo:hi]] = seg


def default_fused_registry() -> dict:
    """The stock dtype-specialized kernel registry, keyed ``(dtype, op
    name)``.

    Populated into ``BackendResources.fused_kernels`` at ``open(ctx)``
    time.  Only pure-placement specializations are registered: a
    combining stage (``op.at``) must keep numpy's exact accumulation
    grouping to stay bitwise-identical to the serial reference, so
    combiners always run the generic unsorted path.  Any ``(dtype, op)``
    pair missing from the registry falls back to the generic numpy
    kernel — the fallback is mandatory, specializations only ever add
    speed.
    """
    registry: dict = {}
    for dt in (np.dtype(np.float64), np.dtype(np.int64)):
        registry[(dt, None)] = _fused_assign_sorted
    return registry


class RankKernel:
    """A named per-rank kernel: a closure plus its shippable payload.

    In-process backends (vectorized, threaded) call it exactly like the
    bare closure it wraps.  Backends that execute rank kernels in
    *other processes* cannot pickle a closure; they look up
    :attr:`name` in their module-level kernel table and rebuild the
    same computation from the declarative payload instead:

    * ``plans`` — plan-derived flat arrays (``forward_flat``,
      ``place_stream``, ...).  Their identity is stable for the
      compiled plan's lifetime, so they are exported to shared memory
      once per plan and reused every call;
    * ``data`` — per-call arrays (the concatenated rank-partitioned
      data stream), copied into scratch shared memory each call;
    * ``inout`` — per-rank arrays the kernel mutates in place (ghost
      stores, scatter targets);
    * ``consts`` — small scalars/offset vectors describing the stream
      bounds (converted to plain tuples before crossing a process
      boundary — no ndarray is ever pickled).

    ``work`` is the total payload bytes the kernel moves machine-wide;
    backends use it to decide whether shipping the kernel beats running
    it inline (``work=0`` marks a kernel that must stay in the calling
    process).
    """

    __slots__ = ("name", "fn", "work", "plans", "data", "inout", "consts")

    def __init__(self, name: str, fn: Callable, *, work: int = 0,
                 plans: dict | None = None, data: dict | None = None,
                 inout: dict | None = None, consts: dict | None = None):
        self.name = name
        self.fn = fn
        self.work = int(work)
        self.plans = plans or {}
        self.data = data or {}
        self.inout = inout or {}
        self.consts = consts or {}

    def __call__(self, p: int):
        return self.fn(p)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankKernel({self.name!r}, work={self.work})"


@register_backend
class VectorizedBackend(Backend):
    """Batched inspector + compiled-plan executor (no per-key or
    per-pair Python loops)."""

    name = "vectorized"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, ctx) -> BackendResources:
        res = BackendResources(self)
        res.fused_kernels = default_fused_registry()
        return res

    # ------------------------------------------------------------------
    # rank-loop execution hook
    # ------------------------------------------------------------------
    def _run_ranks(self, ctx, fn) -> list:
        """Run ``fn(p)`` for every rank; results in rank order.

        Every embarrassingly-parallel per-rank loop below goes through
        this hook so :class:`~repro.core.backends.threaded.ThreadedBackend`
        can fan it out over the worker pool in ``ctx.resources``.  The
        closures passed here are *pure rank kernels*: they read shared
        inputs and write only rank-``p``-owned outputs (disjoint arrays
        or preallocated CSR slices), and never touch ``ctx.machine`` —
        all clock/traffic charging stays with the caller, in rank order,
        so accounting is bitwise-identical however the loop executes.
        """
        return [fn(p) for p in ctx.machine.ranks()]

    # ------------------------------------------------------------------
    # inspector phase: index analysis
    # ------------------------------------------------------------------
    def make_key_store(self):
        return OpenAddressedKeyStore()

    def chaos_hash(self, ctx, htables, ttable, idx, stamp, category):
        from repro.core.inspector import _INSERT_COST, _PROBE_COST

        machine = ctx.machine
        # Step 1: probe; one unique pass per rank, inverse kept so the
        # final localization is a gather instead of a second probe.
        new_per_rank: list[np.ndarray] = []
        uniq_per_rank: list[np.ndarray] = []
        inv_per_rank: list[np.ndarray] = []
        cnt_per_rank: list[np.ndarray] = []
        for p in machine.ranks():
            machine.charge_memops(p, _PROBE_COST * idx[p].size, category)
            uniq, inv, cnt = np.unique(idx[p], return_inverse=True,
                                       return_counts=True)
            uniq_per_rank.append(uniq)
            inv_per_rank.append(inv)
            cnt_per_rank.append(cnt)
            new_per_rank.append(htables[p].store.missing(uniq))

        # Step 2: translate only the new uniques.
        owners, offsets = ttable.dereference(ctx, new_per_rank,
                                             category=category)

        # Step 3: insert, stamp, localize via the unique inverse.
        localized: list[np.ndarray] = []
        for p in machine.ranks():
            ht = htables[p]
            new = new_per_rank[p]
            machine.charge_memops(p, _INSERT_COST * new.size, category)
            ht.insert_translated(new, owners[p], offsets[p])
            if idx[p].size:
                uniq = uniq_per_rank[p]
                slots = ht.lookup_slots(uniq)
                ht.stamp_slots(slots, stamp, counts=cnt_per_rank[p])
                machine.charge_memops(p, uniq.size, category)
                loc_uniq = np.where(
                    ht.proc[slots] == ht.rank,
                    ht.off[slots],
                    ht.n_local + ht.buf[slots],
                ).astype(np.int64)
                localized.append(loc_uniq[inv_per_rank[p]])
            else:
                ht.registry.acquire(stamp)  # stamp exists on empty ranks
                localized.append(np.zeros(0, dtype=np.int64))
        return localized

    # ------------------------------------------------------------------
    # inspector phase: schedule generation
    # ------------------------------------------------------------------
    def build_schedule(self, ctx, htables, expr, category):
        from repro.core.schedule import Schedule

        machine = ctx.machine
        n = machine.n_ranks

        def group_rank(p):
            """Owner-grouped request stream for one rank (pure kernel)."""
            ht = htables[p]
            sel_expr = ht.expr(expr) if isinstance(expr, str) else expr
            slots = ht.select(sel_expr, off_processor_only=True)
            gs = ht.ghost_capacity()
            if slots.size == 0:
                z = np.zeros(0, dtype=np.int64)
                crow = np.zeros(n, dtype=np.int64)
                return ht.n_entries, 0, gs, crow, z, z
            owners = ht.proc[slots]
            # owners are ranks < n: a narrow dtype makes the stable radix
            # argsort several times cheaper than on int64
            if n <= np.iinfo(np.uint16).max:
                order = np.argsort(owners.astype(np.uint16), kind="stable")
            else:
                order = np.argsort(owners, kind="stable")
            slots = slots[order]
            crow = np.bincount(owners[order], minlength=n)
            # fancy indexing already yields fresh arrays; the schedule
            # constructor coerces dtype only if it is not int64 yet
            return (ht.n_entries, slots.size, gs, crow,
                    ht.off[slots], ht.buf[slots])

        grouped = self._run_ranks(ctx, group_rank)

        counts = np.zeros((n, n), dtype=np.int64)  # [p][q]: p requests of q
        requests: list[np.ndarray] = []   # flat, owner-ascending, per rank
        recv_slots: list[np.ndarray] = []
        recv_offsets: list[np.ndarray] = []
        ghost_size = [0] * n
        for p in machine.ranks():
            n_entries, n_sel, gs, crow, req, buf = grouped[p]
            machine.charge_memops(p, n_entries + 2 * n_sel, category)
            ghost_size[p] = gs
            counts[p] = crow
            requests.append(req)
            recv_slots.append(buf)
            recv_offsets.append(offsets_from_counts(crow))

        # Size exchange (schedule setup), then the request exchange —
        # charged from count matrices; the request data itself becomes
        # the receivers' send lists directly: each receiver's flat send
        # buffer is one concatenation of the senders' request segments
        # (sources ascending), no nested per-pair lists anywhere.
        machine.alltoall_lengths_compiled(counts, tag="sched_sizes",
                                          category=category)
        machine.exchange_compiled(counts, 8, tag="sched_requests",
                                  category=category)
        recv_totals = counts.sum(axis=0)

        def concat_rank(q):
            """One receiver's flat send buffer (pure kernel)."""
            if recv_totals[q]:
                return np.concatenate([
                    requests[p][recv_offsets[p][q]:recv_offsets[p][q + 1]]
                    for p in np.flatnonzero(counts[:, q])
                ])
            return np.zeros(0, dtype=np.int64)

        send_indices = self._run_ranks(ctx, concat_rank)
        send_offsets = []
        for q in machine.ranks():
            send_offsets.append(offsets_from_counts(counts[:, q]))
            if recv_totals[q]:
                machine.charge_memops(q, int(recv_totals[q]), category)
        return Schedule(
            n_ranks=n,
            send_indices=send_indices,
            send_offsets=send_offsets,
            recv_slots=recv_slots,
            recv_offsets=recv_offsets,
            ghost_size=ghost_size,
        )

    # ------------------------------------------------------------------
    # inspector phase: translation-table lookups
    # ------------------------------------------------------------------
    def translation_lookup(self, ctx, ttable, qs, category):
        from repro.core.translation import _ENTRY_BYTES

        m = ctx.machine
        if ttable.storage == "replicated":
            for p in m.ranks():
                m.charge_memops(p, qs[p].size, category)
            return
        n = m.n_ranks
        counts = np.zeros((n, n), dtype=np.int64)  # requests p -> home
        for p in m.ranks():
            q = qs[p]
            if q.size == 0:
                continue
            if ttable.storage == "paged":
                uniq_pages = np.unique(q // ttable.page_size)
                cache = ttable._page_cache[p]
                # same admit path as the serial reference: identical
                # cache state, identical re-fetch traffic under a budget
                missing = cache.admit(uniq_pages, ttable.page_budget(ctx))
                if missing.size:
                    starts = np.minimum(missing * ttable.page_size,
                                        ttable.dist.n_global - 1)
                    homes = ttable._table_dist.owner(starts)
                    counts[p] = (np.bincount(homes, minlength=n)
                                 * ttable.page_size)
                m.charge_memops(p, q.size, category)  # local cache probes
            else:
                homes = ttable._table_dist.owner(q)
                counts[p] = np.bincount(homes, minlength=n)
        # request: 8 bytes/index; reply: _ENTRY_BYTES per entry, shipped
        # as whole int64 words exactly like the serial reference
        m.exchange_compiled(counts, 8, tag="ttable_lookup_req",
                            category=category)
        reply_words = (counts.T * _ENTRY_BYTES) // 8
        m.exchange_compiled(reply_words, 8, tag="ttable_lookup_rep",
                            category=category)
        served = counts.sum(axis=0)
        for h in m.ranks():
            m.charge_memops(h, int(served[h]), category)

    # ------------------------------------------------------------------
    # regular schedules
    # ------------------------------------------------------------------
    def gather(self, ctx, sched, data, ghosts, category):
        machine = ctx.machine
        plan = compile_schedule(sched)
        layout = _flat_layout(data)
        glayout = _flat_layout(ghosts)
        if layout is None or glayout is None or layout[1] != glayout[1]:
            return _serial().gather(ctx, sched, data, ghosts, category)
        sizes, _, k = layout
        for p in machine.ranks():
            if plan.send_idx[p].size:
                machine.charge_copyops(p, plan.send_idx[p].size, category)
        machine.exchange_compiled(
            plan.counts, [row_nbytes(np.asarray(d)) for d in data],
            tag="gather", category=category,
        )
        # the global fancy gather runs *inside* the rank kernel, one
        # receive-stream slice per rank, so parallel backends spread the
        # expensive part instead of just the placement
        flat = np.concatenate(data, axis=0).reshape(-1)
        fwd = plan.forward_flat(sizes, k)
        place = plan.place_stream(k)

        def place_rank(p):
            sl = plan.recv_slice(p, k)
            if sl.stop > sl.start:
                ghosts[p].reshape(-1)[place[sl]] = flat[fwd[sl]]

        self._run_ranks(ctx, RankKernel(
            "gather_place", place_rank,
            work=plan.total * k * flat.dtype.itemsize,
            plans={"fwd": fwd, "place": place},
            data={"flat": flat},
            inout={"ghost": ghosts},
            consts={"k": k, "recv_base": plan.recv_base},
        ))
        for p in machine.ranks():
            if plan.place_idx[p].size:
                machine.charge_copyops(p, plan.place_idx[p].size, category)
        return ghosts

    def scatter(self, ctx, sched, data, ghosts, op: Callable | None,
                category) -> None:
        machine = ctx.machine
        plan = compile_schedule(sched)
        layout = _flat_layout(data)
        glayout = _flat_layout(ghosts)
        if layout is None or glayout is None or layout[1] != glayout[1]:
            return _serial().scatter(ctx, sched, data, ghosts, op,
                                     category)
        gsizes, _, k = glayout
        for p in machine.ranks():
            if plan.place_idx[p].size:
                machine.charge_copyops(p, plan.place_idx[p].size, category)
        machine.exchange_compiled(
            plan.counts.T, [row_nbytes(np.asarray(g)) for g in ghosts],
            tag="scatter", category=category,
        )
        flat = np.concatenate(ghosts, axis=0).reshape(-1)
        rev = plan.reverse_flat(gsizes, k)
        send = plan.send_stream(k)

        def apply_rank(p):
            sl = plan.send_slice(p, k)
            if sl.stop > sl.start:
                seg = flat[rev[sl]]
                target = data[p].reshape(-1)
                if op is None:
                    target[send[sl]] = seg
                else:
                    op.at(target, send[sl], seg)

        self._run_ranks(ctx, RankKernel(
            "scatter_apply", apply_rank,
            work=plan.total * k * flat.dtype.itemsize,
            plans={"rev": rev, "send": send},
            data={"flat": flat},
            inout={"data": data},
            consts={"k": k, "send_base": plan.send_base, "op": op},
        ))
        for p in machine.ranks():
            if plan.send_idx[p].size:
                machine.charge_copyops(p, plan.send_idx[p].size, category)

    # ------------------------------------------------------------------
    # light-weight schedules
    # ------------------------------------------------------------------
    def scatter_append(self, ctx, sched, values, category):
        machine = ctx.machine
        plan = compile_lightweight_schedule(sched)
        layout = _flat_layout(values)
        if layout is None:
            return _serial().scatter_append(ctx, sched, values, category)
        sizes, trailing, k = layout
        for p in machine.ranks():
            machine.charge_copyops(p, np.asarray(values[p]).shape[0],
                                   category)
        machine.exchange_compiled(
            plan.counts, [row_nbytes(np.asarray(v)) for v in values],
            tag="scatter_append", category=category,
        )
        flat = np.concatenate(values, axis=0).reshape(-1)
        fwd = plan.forward_flat(sizes, k)
        dtype = np.asarray(values[0]).dtype

        def assemble_rank(p):
            sl = plan.recv_slice(p, k)
            if sl.stop > sl.start:
                return flat[fwd[sl]].reshape((-1,) + trailing)
            return np.zeros((0,) + trailing, dtype=dtype)

        out = self._run_ranks(ctx, RankKernel(
            "append_stream", assemble_rank,
            work=plan.total * k * flat.dtype.itemsize,
            plans={"fwd": fwd},
            data={"flat": flat},
            consts={"k": k, "recv_base": plan.recv_base,
                    "trailing": trailing, "dtype": dtype},
        ))
        for p in machine.ranks():
            arrived_n = int(plan.recv_base[p + 1] - plan.recv_base[p])
            from_others = arrived_n - int(plan.counts[p, p])
            if from_others:
                machine.charge_copyops(p, from_others, category)
        return out

    def scatter_append_multi(self, ctx, sched, arrays, category):
        machine = ctx.machine
        plan = compile_lightweight_schedule(sched)
        layouts = [_flat_layout(values) for values in arrays]
        if any(layout is None for layout in layouts):
            return _serial().scatter_append_multi(ctx, sched, arrays,
                                                  category)
        n_attr = len(arrays)
        elem_bytes = np.zeros(machine.n_ranks, dtype=np.int64)
        for p in machine.ranks():
            for k in range(n_attr):
                elem_bytes[p] += row_nbytes(np.asarray(arrays[k][p]))
            machine.charge_copyops(
                p, n_attr * plan.send_idx[p].size, category
            )
        machine.exchange_compiled(plan.counts, elem_bytes,
                                  tag="scatter_append", category=category)
        cols = []
        for values, (sizes, trailing, k) in zip(arrays, layouts):
            flat = np.concatenate(values, axis=0).reshape(-1)
            fwd = plan.forward_flat(sizes, k)
            dtype = np.asarray(values[0]).dtype

            def assemble_rank(p, flat=flat, fwd=fwd, trailing=trailing,
                              k=k, dtype=dtype):
                sl = plan.recv_slice(p, k)
                if sl.stop > sl.start:
                    return flat[fwd[sl]].reshape((-1,) + trailing)
                return np.zeros((0,) + trailing, dtype=dtype)

            cols.append(self._run_ranks(ctx, RankKernel(
                "append_stream", assemble_rank,
                work=plan.total * k * flat.dtype.itemsize,
                plans={"fwd": fwd},
                data={"flat": flat},
                consts={"k": k, "recv_base": plan.recv_base,
                        "trailing": trailing, "dtype": dtype},
            )))
        for p in machine.ranks():
            arrived = int(plan.recv_base[p + 1] - plan.recv_base[p])
            from_others = arrived - int(plan.counts[p, p])
            if from_others:
                machine.charge_copyops(p, n_attr * from_others, category)
        return cols

    # ------------------------------------------------------------------
    # remap plans
    # ------------------------------------------------------------------
    def remap_array(self, ctx, plan, data, category):
        machine = ctx.machine
        cp = compile_remap_plan(plan)
        layout = _flat_layout(data)
        if layout is None:
            return _serial().remap_array(ctx, plan, data, category)
        sizes, trailing, k = layout
        for p in machine.ranks():
            if cp.send_idx[p].size:
                machine.charge_copyops(p, cp.send_idx[p].size, category)
        machine.exchange_compiled(
            cp.counts, [row_nbytes(np.asarray(d)) for d in data],
            tag="remap_data", category=category,
        )
        flat = np.concatenate(data, axis=0).reshape(-1)
        fwd = cp.forward_flat(sizes, k)
        place = cp.place_stream(k)
        new_sizes = tuple(int(n) for n in plan.new_sizes)
        dtype = np.asarray(data[0]).dtype

        def place_rank(p):
            new_local = np.zeros((new_sizes[p],) + trailing, dtype=dtype)
            sl = cp.recv_slice(p, k)
            if sl.stop > sl.start:
                new_local.reshape(-1)[place[sl]] = flat[fwd[sl]]
            return new_local

        out = self._run_ranks(ctx, RankKernel(
            "remap_place", place_rank,
            work=cp.total * k * flat.dtype.itemsize,
            plans={"fwd": fwd, "place": place},
            data={"flat": flat},
            consts={"k": k, "recv_base": cp.recv_base,
                    "new_sizes": new_sizes, "trailing": trailing,
                    "dtype": dtype},
        ))
        for p in machine.ranks():
            if cp.place_idx[p].size:
                machine.charge_copyops(p, cp.place_idx[p].size, category)
        return out

    # ------------------------------------------------------------------
    # fused pipelines
    # ------------------------------------------------------------------
    def run_fused(self, ctx, fused, binds, category):
        """One-pass fused execution: every stage moves its data with a
        single composed kernel, all stages inside one rank loop.

        Per stage the data path is one fancy assign through the
        composed ``pack ∘ permute ∘ place`` index vector — destination
        slots written straight from the flattened source concat, with
        no intermediate exchange stream.  Pure-placement stages use the
        destination-sorted variant from the dtype registry (ascending
        stores, contiguous when dense); combining stages keep the
        unsorted ``op.at`` fold order.  Accounting is charged per stage
        in stage order before any data moves; since rank kernels never
        touch the machine, the clock/traffic call sequence is exactly
        the unfused one.  Inputs the flat layout cannot express fall
        back to the reference multi-pass default.
        """
        machine = ctx.machine
        stages = fused.stages
        key = []
        trailings = []
        flats = []
        for stage, bind in zip(stages, binds):
            layout = _flat_layout(bind.sources)
            if layout is None:
                return super().run_fused(ctx, fused, binds, category)
            sizes, trailing, k = layout
            dtype = np.asarray(bind.sources[0]).dtype
            if bind.dests is not None:
                dlayout = _flat_layout(bind.dests)
                if (dlayout is None or dlayout[1] != trailing
                        or np.asarray(bind.dests[0]).dtype != dtype):
                    return super().run_fused(ctx, fused, binds, category)
            key.append((k, str(dtype), sizes))
            trailings.append(trailing)
            flats.append(np.concatenate(
                [np.asarray(a).reshape(-1) for a in bind.sources]))
        combined = fused.layout(tuple(key))
        layouts = combined.stages

        for stage, bind in zip(stages, binds):
            self._charge_fused_stage(machine, stage, bind, category)

        # stage results + the per-rank arrays the apply phase writes
        results = []
        dests = []
        dest_flats = []
        for stage, bind, st, trailing in zip(stages, binds, layouts,
                                             trailings):
            if stage.kind == "scatter":
                results.append(None)
                dests.append(bind.dests)
            elif stage.kind == "gather":
                results.append(bind.dests)
                dests.append(bind.dests)
            elif stage.kind == "append":
                base = stage.plan.recv_base
                outs = [
                    np.empty((int(base[p + 1] - base[p]),) + trailing,
                             dtype=st.dtype)
                    for p in machine.ranks()
                ]
                results.append(outs)
                dests.append(outs)
            else:  # remap
                outs = [
                    np.zeros((int(m),) + trailing, dtype=st.dtype)
                    for m in stage.sched.new_sizes
                ]
                results.append(outs)
                dests.append(outs)
            dest_flats.append([np.asarray(d).reshape(-1)
                               for d in dests[-1]])

        # dtype-specialized apply kernels for the pure-placement stages;
        # combiners keep the generic ``op.at`` path (bitwise contract)
        registry = getattr(ctx.resources, "fused_kernels", None) or {}
        stage_fns = [
            registry.get((st.dtype, None), _fused_assign_generic)
            if st.mode == "assign" else None
            for st in layouts
        ]

        def apply_rank(p):
            for st, fn, flat, dflat in zip(layouts, stage_fns, flats,
                                           dest_flats):
                lo = st.bounds[p]
                hi = st.bounds[p + 1]
                if hi <= lo:
                    continue
                dst = dflat[p]
                if st.mode == "fill":
                    dst[:hi - lo] = flat[st.src_index[lo:hi]]
                elif st.mode == "accum":
                    st.op.at(dst, st.dst_index[lo:hi],
                             flat[st.src_index[lo:hi]])
                else:
                    fn(flat, st, lo, hi, dst)

        data = {f"fl{s}": flat for s, flat in enumerate(flats)}
        inout = {f"io{s}": ds for s, ds in enumerate(dests)}
        self._run_ranks(ctx, RankKernel(
            "fused_apply", apply_rank, work=combined.work,
            plans=combined.plans, data=data, inout=inout,
            consts=combined.consts,
        ))
        return results

    @staticmethod
    def _charge_fused_stage(machine, stage, bind, category) -> None:
        """Charge one fused stage exactly like its unfused primitive:
        pre-copyops, the compiled exchange, post-copyops, in that order."""
        plan = stage.plan
        if stage.kind == "gather":
            for p in machine.ranks():
                if plan.send_idx[p].size:
                    machine.charge_copyops(p, plan.send_idx[p].size,
                                           category)
            machine.exchange_compiled(
                plan.counts,
                [row_nbytes(np.asarray(d)) for d in bind.sources],
                tag="gather", category=category,
            )
            for p in machine.ranks():
                if plan.place_idx[p].size:
                    machine.charge_copyops(p, plan.place_idx[p].size,
                                           category)
        elif stage.kind == "scatter":
            for p in machine.ranks():
                if plan.place_idx[p].size:
                    machine.charge_copyops(p, plan.place_idx[p].size,
                                           category)
            machine.exchange_compiled(
                plan.counts.T,
                [row_nbytes(np.asarray(g)) for g in bind.sources],
                tag="scatter", category=category,
            )
            for p in machine.ranks():
                if plan.send_idx[p].size:
                    machine.charge_copyops(p, plan.send_idx[p].size,
                                           category)
        elif stage.kind == "append":
            for p in machine.ranks():
                machine.charge_copyops(
                    p, np.asarray(bind.sources[p]).shape[0], category)
            machine.exchange_compiled(
                plan.counts,
                [row_nbytes(np.asarray(v)) for v in bind.sources],
                tag="scatter_append", category=category,
            )
            for p in machine.ranks():
                arrived = int(plan.recv_base[p + 1] - plan.recv_base[p])
                from_others = arrived - int(plan.counts[p, p])
                if from_others:
                    machine.charge_copyops(p, from_others, category)
        else:  # remap
            for p in machine.ranks():
                if plan.send_idx[p].size:
                    machine.charge_copyops(p, plan.send_idx[p].size,
                                           category)
            machine.exchange_compiled(
                plan.counts,
                [row_nbytes(np.asarray(d)) for d in bind.sources],
                tag="remap_data", category=category,
            )
            for p in machine.ranks():
                if plan.place_idx[p].size:
                    machine.charge_copyops(p, plan.place_idx[p].size,
                                           category)
