"""Multiprocess backend: rank kernels in worker *processes* over
shared-memory views of the compiled plans.

The threaded backend fans the per-rank executor kernels over threads,
but every kernel still competes for one GIL.  This backend runs the
same kernels — bitwise identical results, schedules and traffic — in a
per-context :class:`~concurrent.futures.ProcessPoolExecutor`, with all
array payloads crossing the process boundary as *descriptors* into
POSIX shared memory, never as pickled ndarrays:

* **plan buffers** (``forward_flat``, ``place_stream``, ...) are
  exported to the arena's *static* region once per compiled plan —
  their identity is stable for the plan's lifetime (they are cached on
  the plan), so steady-state calls reuse the same segments;
* **per-call data** (the concatenated rank-partitioned stream, the
  in/out rank arrays) is copied into the *scratch* region, which is
  reset at the start of every shipped call;
* **messages** are ``(segment name, offset, length, dtype)`` tuples
  plus plain-int constants.  ``tests/test_multiprocess_backend.py``
  instruments the pickler to prove no ndarray payload ever crosses.

Work is chunked: each worker receives a contiguous range of ranks and
runs the kernel loop over it, so a machine with more ranks than cores
costs one round-trip per worker, not per rank.  All machine accounting
(clocks, traffic) stays on the calling process in rank order — workers
only move bytes.

Whether a kernel is worth shipping is decided per call from
:attr:`RankKernel.work` (total payload *bytes* moved machine-wide)
against ``REPRO_MP_SHIP_THRESHOLD`` (default 32768 bytes): tiny
exchanges run inline on the vectorized path, since a process round-trip
costs more than the kernel.  Counting bytes rather than scalars means
wide rows (3-vectors of float64) cross the threshold as early as their
payload warrants, instead of being under-counted by a factor of the row
width.  Kernels that cannot ship — bare closures from the inspector
phase, scatter with a non-ufunc combiner, serial fallbacks — also run
inline, so every primitive works under this backend.

Lifecycle follows :class:`~repro.core.backends.base.PooledResources`:
the pool and arena are owned by the per-context resource handle,
``ctx.close()`` shuts the pool down and unlinks every shared-memory
segment, and a GC finalizer backs both up.  The pool itself starts
lazily on the first shipped kernel, so contexts that never cross the
threshold pay nothing.  The start method defaults to ``forkserver``
where available (``spawn`` elsewhere) and can be forced with
``REPRO_MP_START_METHOD``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import NamedTuple

import numpy as np

from repro.core.backends.base import (
    PooledResources,
    collect_futures,
    register_backend,
)
from repro.core.backends.vectorized import (
    RankKernel,
    VectorizedBackend,
    default_fused_registry,
)

#: environment variable selecting the worker start method
START_METHOD_ENV_VAR = "REPRO_MP_START_METHOD"

#: environment variable overriding the ship/inline work threshold
SHIP_THRESHOLD_ENV_VAR = "REPRO_MP_SHIP_THRESHOLD"

#: minimum machine-wide payload bytes moved before a kernel is shipped
DEFAULT_SHIP_THRESHOLD = 32768

_ALIGN = 16


class ShmRef(NamedTuple):
    """Descriptor of a flat array living in a shared-memory segment."""

    segment: str
    offset: int
    length: int
    dtype: str


def _start_method() -> str:
    forced = os.environ.get(START_METHOD_ENV_VAR)
    if forced:
        return forced
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def _ship_threshold() -> int:
    raw = os.environ.get(SHIP_THRESHOLD_ENV_VAR)
    if raw is None:
        return DEFAULT_SHIP_THRESHOLD
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_SHIP_THRESHOLD


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


class _Region:
    """Bump allocator over a growable list of shared-memory segments."""

    __slots__ = ("segments", "used", "capacity")

    def __init__(self, capacity: int):
        self.segments: list[shared_memory.SharedMemory] = []
        self.used = 0
        self.capacity = int(capacity)

    def alloc(self, nbytes: int) -> tuple[shared_memory.SharedMemory, int]:
        nbytes = int(nbytes)
        if not self.segments or self.used + nbytes > self.segments[-1].size:
            size = max(nbytes, self.capacity, _ALIGN)
            self.segments.append(
                shared_memory.SharedMemory(create=True, size=size)
            )
            self.used = 0
        segment = self.segments[-1]
        offset = self.used
        self.used = _aligned(offset + nbytes)
        return segment, offset

    def reset(self) -> None:
        """Rewind the bump pointer; consolidate if growth fragmented us."""
        if len(self.segments) > 1:
            self.capacity = max(
                self.capacity, sum(s.size for s in self.segments)
            )
            self.destroy()
        self.used = 0

    def destroy(self) -> None:
        for segment in self.segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.segments.clear()
        self.used = 0


class ShmArena:
    """Per-context shared-memory arena with static and scratch regions.

    The *static* region holds plan-derived buffers, exported at most
    once per array object (keyed by identity — sound because compiled
    plans cache their flat layouts for the plan's lifetime, and the
    cache keeps a strong reference so ids cannot be recycled).  The
    *scratch* region holds per-call payloads and is reset before every
    shipped kernel.  ``close()`` unlinks every segment; the names are
    recorded so tests can verify nothing is left in ``/dev/shm``.
    """

    def __init__(self):
        self._static = _Region(1 << 20)
        self._scratch = _Region(1 << 20)
        self._exports: dict[int, tuple[np.ndarray, ShmRef]] = {}

    # -- allocation ----------------------------------------------------
    def _write(self, region: _Region, flat: np.ndarray
               ) -> tuple[ShmRef, np.ndarray]:
        if flat.size == 0:
            return (ShmRef("", 0, 0, str(flat.dtype)),
                    np.zeros(0, dtype=flat.dtype))
        segment, offset = region.alloc(flat.nbytes)
        view = np.ndarray(flat.size, dtype=flat.dtype,
                          buffer=segment.buf, offset=offset)
        view[:] = flat
        ref = ShmRef(segment.name, offset, flat.size, str(flat.dtype))
        return ref, view

    def export_plan(self, arr: np.ndarray) -> ShmRef:
        """Static export, at most once per (still-alive) array object."""
        entry = self._exports.get(id(arr))
        if entry is not None and entry[0] is arr:
            return entry[1]
        ref, _ = self._write(self._static, arr.reshape(-1))
        self._exports[id(arr)] = (arr, ref)
        return ref

    def export_scratch(self, arr: np.ndarray) -> tuple[ShmRef, np.ndarray]:
        """Copy ``arr`` (flattened) into scratch; ref plus parent view."""
        return self._write(self._scratch, arr.reshape(-1))

    def alloc_scratch(self, length: int, dtype) -> tuple[ShmRef, np.ndarray]:
        """Uninitialized scratch output buffer of ``length`` scalars."""
        dtype = np.dtype(dtype)
        if length == 0:
            return (ShmRef("", 0, 0, str(dtype)),
                    np.zeros(0, dtype=dtype))
        segment, offset = self._scratch.alloc(length * dtype.itemsize)
        view = np.ndarray(length, dtype=dtype,
                          buffer=segment.buf, offset=offset)
        ref = ShmRef(segment.name, offset, int(length), str(dtype))
        return ref, view

    def reset_scratch(self) -> None:
        self._scratch.reset()

    # -- lifecycle -----------------------------------------------------
    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in
                     self._static.segments + self._scratch.segments)

    def close(self) -> None:
        self._exports.clear()
        self._static.destroy()
        self._scratch.destroy()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: per-worker cache of attached segments (dies with the worker process)
_WORKER_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _attach(ref: ShmRef) -> np.ndarray:
    if ref.length == 0:
        return np.zeros(0, dtype=np.dtype(ref.dtype))
    segment = _WORKER_SEGMENTS.get(ref.segment)
    if segment is None:
        segment = shared_memory.SharedMemory(name=ref.segment)
        _WORKER_SEGMENTS[ref.segment] = segment
    return np.ndarray(ref.length, dtype=np.dtype(ref.dtype),
                      buffer=segment.buf, offset=ref.offset)


def _k_gather_place(ranks, bufs, consts):
    k, base = consts["k"], consts["recv_base"]
    fwd, place, flat = bufs["fwd"], bufs["place"], bufs["flat"]
    ghost = bufs["ghost"]
    for p in ranks:
        lo, hi = base[p] * k, base[p + 1] * k
        if hi > lo:
            ghost[p][place[lo:hi]] = flat[fwd[lo:hi]]


def _k_scatter_apply(ranks, bufs, consts):
    k, base = consts["k"], consts["send_base"]
    op = getattr(np, consts["op"]) if consts["op"] else None
    rev, send, flat = bufs["rev"], bufs["send"], bufs["flat"]
    data = bufs["data"]
    for p in ranks:
        lo, hi = base[p] * k, base[p + 1] * k
        if hi > lo:
            seg = flat[rev[lo:hi]]
            if op is None:
                data[p][send[lo:hi]] = seg
            else:
                op.at(data[p], send[lo:hi], seg)


def _k_append_stream(ranks, bufs, consts):
    k, base = consts["k"], consts["recv_base"]
    fwd, flat, out = bufs["fwd"], bufs["flat"], bufs["out"]
    for p in ranks:
        lo, hi = base[p] * k, base[p + 1] * k
        if hi > lo:
            out[p][:] = flat[fwd[lo:hi]]


def _k_remap_place(ranks, bufs, consts):
    k, base = consts["k"], consts["recv_base"]
    fwd, place, flat = bufs["fwd"], bufs["place"], bufs["flat"]
    out = bufs["out"]
    for p in ranks:
        buf = out[p]
        buf[:] = 0
        lo, hi = base[p] * k, base[p + 1] * k
        if hi > lo:
            buf[place[lo:hi]] = flat[fwd[lo:hi]]


def _k_fused_apply(ranks, bufs, consts):
    """All stages of a fused pipeline over one rank range.

    Ranks loop outer, stages inner — per-rank the stages run in chain
    order, so two stages writing the same target keep the sequential
    semantics.  Each stage is one composed assign from its flattened
    source concat (``fl``) through the (possibly destination-sorted)
    index pair ``sf``/``ap``; ``dense`` marks segments whose slots are
    ``0..n-1`` in order, where the store is one contiguous write and no
    ``ap`` vector ships at all.  Combining stages fold with the
    unsorted vectors — ``op.at`` order is part of the bitwise contract.
    """
    n_stages = consts["n_stages"]
    ops = consts["ops"]
    bounds, dense = consts["bounds"], consts["dense"]
    for p in ranks:
        for s in range(n_stages):
            lo, hi = bounds[s][p], bounds[s][p + 1]
            if hi <= lo:
                continue
            dst = bufs[f"io{s}"][p]
            seg = bufs[f"fl{s}"][bufs[f"sf{s}"][lo:hi]]
            if ops[s] is not None:
                getattr(np, ops[s]).at(dst, bufs[f"ap{s}"][lo:hi], seg)
            elif dense[s]:
                dst[:hi - lo] = seg
            else:
                dst[bufs[f"ap{s}"][lo:hi]] = seg


#: module-level (hence picklable-by-reference) kernel bodies, keyed by
#: the :class:`RankKernel` name built in ``vectorized.py``
_KERNELS = {
    "gather_place": _k_gather_place,
    "scatter_apply": _k_scatter_apply,
    "append_stream": _k_append_stream,
    "remap_place": _k_remap_place,
    "fused_apply": _k_fused_apply,
}


def _run_rank_chunk(name, ranks, refs, consts) -> None:
    """Worker entry point: resolve descriptors, run one rank range."""
    bufs = {}
    for key, ref in refs.items():
        if isinstance(ref, ShmRef):
            bufs[key] = _attach(ref)
        else:
            bufs[key] = [_attach(r) for r in ref]
    _KERNELS[name](ranks, bufs, consts)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _plain(value):
    """Constants as they cross the boundary: never a numpy object."""
    if isinstance(value, np.ndarray):
        return tuple(int(x) for x in value)
    if isinstance(value, np.ufunc):
        return value.__name__
    if isinstance(value, np.dtype):
        return str(value)
    if isinstance(value, np.generic):
        return value.item()
    return value


def _chunk_ranks(n_ranks: int, width: int) -> list[list[int]]:
    """Contiguous rank ranges, one per worker, balanced to ±1."""
    width = max(1, min(int(width), int(n_ranks)))
    base, extra = divmod(n_ranks, width)
    chunks, start = [], 0
    for i in range(width):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            chunks.append(list(range(start, stop)))
        start = stop
    return chunks


class MultiprocessResources(PooledResources):
    """Per-context process pool plus the shared-memory arena."""

    __slots__ = ()

    def __init__(self, owner, n_ranks: int):
        # the pool is lazy: launching worker processes is only worth it
        # once a kernel actually crosses the ship threshold
        super().__init__(owner, n_ranks, eager=False)
        self._state["arena"] = ShmArena()

    @property
    def arena(self) -> ShmArena:
        return self._state["arena"]

    def _make_pool(self) -> ProcessPoolExecutor:
        method = _start_method()
        mp_context = multiprocessing.get_context(method)
        if method == "forkserver":
            # amortize the heavy imports across every forked worker (a
            # no-op if another pool already launched the server)
            mp_context.set_forkserver_preload(
                ["numpy", "repro.core.backends.multiprocess"]
            )
        return ProcessPoolExecutor(max_workers=self.n_workers,
                                   mp_context=mp_context)

    @classmethod
    def _emergency(cls, state: dict) -> None:
        cls._shutdown_pool(state, wait=False)
        arena = state.get("arena")
        if arena is not None:
            arena.close()

    def _release_extra(self) -> None:
        self.arena.close()


@register_backend
class MultiprocessBackend(VectorizedBackend):
    """Vectorized kernels shipped to worker processes via shared memory."""

    name = "multiprocess"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, ctx) -> MultiprocessResources:
        res = MultiprocessResources(self, ctx.machine.n_ranks)
        res.fused_kernels = default_fused_registry()
        return res

    # ------------------------------------------------------------------
    # rank-loop execution hook
    # ------------------------------------------------------------------
    def _run_ranks(self, ctx, fn) -> list:
        res = self._owned_resources(ctx, MultiprocessResources)
        if not self._shippable(fn):
            return [fn(p) for p in ctx.machine.ranks()]
        return self._ship(ctx, res, fn)

    @staticmethod
    def _shippable(fn) -> bool:
        if not isinstance(fn, RankKernel) or fn.name not in _KERNELS:
            return False  # bare closure (inspector phase, fallbacks)
        if fn.work <= 0 or fn.work < _ship_threshold():
            return False  # the round-trip would cost more than the kernel
        op = fn.consts.get("op")
        if op is not None and not (isinstance(op, np.ufunc)
                                   and getattr(np, op.__name__, None) is op):
            return False  # only named numpy ufuncs cross the boundary
        for name in fn.consts.get("ops") or ():
            # fused combiners cross pre-plainified, as ufunc names
            if name is not None and not isinstance(
                    getattr(np, name, None), np.ufunc):
                return False
        return True

    def _ship(self, ctx, res: MultiprocessResources,
              kernel: RankKernel) -> list:
        n_ranks = ctx.machine.n_ranks
        pool = res.ensure_pool()
        arena = res.arena
        arena.reset_scratch()
        refs: dict = {
            key: arena.export_plan(arr)
            for key, arr in kernel.plans.items()
        }
        for key, arr in kernel.data.items():
            refs[key], _ = arena.export_scratch(arr)
        copyback = []
        exported: dict = {}
        for key, arrays in kernel.inout.items():
            rank_refs = []
            for arr in arrays:
                flat = arr.reshape(-1)
                # one scratch copy per distinct memory region: a fused
                # pipeline may target the same array from several
                # stages, and separate copies would lose all but the
                # last stage's writes on copy-back
                memo = ((flat.__array_interface__["data"][0],
                         flat.nbytes, flat.dtype.str)
                        if flat.size else None)
                entry = exported.get(memo) if memo is not None else None
                if entry is None:
                    ref, view = arena.export_scratch(flat)
                    if memo is not None:
                        exported[memo] = (ref, view)
                        copyback.append((flat, view))
                else:
                    ref, view = entry
                rank_refs.append(ref)
            refs[key] = rank_refs
        out_views = self._alloc_outputs(kernel, arena, refs, n_ranks)
        consts = {key: _plain(v) for key, v in kernel.consts.items()}
        collect_futures([
            pool.submit(_run_rank_chunk, kernel.name, chunk, refs, consts)
            for chunk in _chunk_ranks(n_ranks, res.n_workers)
        ])
        for flat, view in copyback:
            flat[:] = view
        if out_views is None:
            return [None] * n_ranks
        trailing = kernel.consts["trailing"]
        return [v.reshape((-1,) + trailing).copy() for v in out_views]

    @staticmethod
    def _alloc_outputs(kernel, arena, refs, n_ranks):
        """Scratch buffers for value-returning kernels (sizes are known
        to the parent from the plan bounds — workers never send arrays
        back, they fill these and return ``None``)."""
        if kernel.name == "append_stream":
            base = kernel.consts["recv_base"]
            counts = [int(base[p + 1] - base[p]) for p in range(n_ranks)]
        elif kernel.name == "remap_place":
            counts = list(kernel.consts["new_sizes"])
        else:
            return None
        k, dtype = kernel.consts["k"], kernel.consts["dtype"]
        rank_refs, views = [], []
        for count in counts:
            ref, view = arena.alloc_scratch(count * k, dtype)
            rank_refs.append(ref)
            views.append(view)
        refs["out"] = rank_refs
        return views
