"""Communication schedules (paper §3.2.1) and schedule generation.

A schedule for rank ``p`` stores exactly what the paper lists:

1. *send list* — local elements ``p`` must send to each other rank,
2. *permutation list* — where incoming off-processor elements land in
   ``p``'s ghost buffer,
3. *send sizes* and 4. *fetch sizes* — per-destination message sizes.

The paper hands these to the communication layer as flat index/offset
buffers, and since the CSR-native refactor :class:`Schedule` stores them
the same way: one concatenated int64 index vector per rank plus a
``(n_ranks + 1,)`` offset vector delimiting each partner's segment —
no nested per-pair Python lists anywhere in the dataclass.  Per-pair
views are available through :meth:`Schedule.send_view` /
:meth:`Schedule.recv_view` (zero-copy slices); the kwarg-era nested
accessors are gone.

Schedules are built collectively from the stamped hash tables
(:func:`build_schedule`): each rank selects the off-processor entries
matching a :class:`~repro.core.hashtable.StampExpr`, groups them by owner,
and a request exchange tells every owner which of its local elements other
ranks need.  Merged and incremental schedules fall out of the stamp
algebra for free.

:func:`build_schedule` validates and dispatches to the backend carried
by its :class:`~repro.core.context.ExecutionContext`: ``serial`` walks
the stamped entries per rank in Python (the reference), ``vectorized``
(the default) groups by owner with argsort/bincount; both emit the flat
CSR buffers directly — zero per-pair list assembly — and produce
bitwise-identical schedules and traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiled import (
    concat_csr,
    normalize_csr,
    zero_csr,
)
from repro.core.context import ensure_context
from repro.core.hashtable import IndexHashTable, StampExpr


@dataclass
class Schedule:
    """A built communication schedule, CSR-native and rank-major.

    ``send_indices[p]`` — local offsets on ``p`` of every element ``p``
    sends, concatenated destination-ascending; ``send_offsets[p]`` is the
    ``(n_ranks + 1,)`` vector delimiting each destination's segment (the
    segment for ``q`` is ``send_indices[p][send_offsets[p][q]:
    send_offsets[p][q + 1]]``).  ``recv_slots[p]`` / ``recv_offsets[p]``
    hold the ghost-buffer slots where data arriving at ``p`` is placed,
    concatenated source-ascending and aligned element-wise with the
    senders' segments.  ``ghost_size[p]`` — ghost-buffer slots rank ``p``
    must allocate.
    """

    n_ranks: int
    send_indices: list[np.ndarray]
    send_offsets: list[np.ndarray]
    recv_slots: list[np.ndarray]
    recv_offsets: list[np.ndarray]
    ghost_size: list[int]

    def __post_init__(self):
        n = self.n_ranks
        if len(self.send_indices) != n or len(self.recv_slots) != n:
            raise ValueError("schedule buffers must have one entry per rank")
        self.send_indices, self.send_offsets, send_counts = normalize_csr(
            self.send_indices, self.send_offsets, n, "send"
        )
        self.recv_slots, self.recv_offsets, recv_counts = normalize_csr(
            self.recv_slots, self.recv_offsets, n, "recv"
        )
        if not np.array_equal(send_counts, recv_counts.T):
            p, q = np.argwhere(send_counts != recv_counts.T)[0]
            raise ValueError(
                f"schedule inconsistent: {p} sends {send_counts[p, q]} to "
                f"{q} but {q} expects {recv_counts[q, p]}"
            )
        self._counts = send_counts

    # -- flat layout accessors ------------------------------------------
    def counts(self) -> np.ndarray:
        """``(n_ranks, n_ranks)`` matrix: ``counts[p, q]`` elements
        ``p`` sends to ``q``."""
        return self._counts

    def send_view(self, rank: int, dest: int) -> np.ndarray:
        """Zero-copy view of ``rank``'s send segment for ``dest``."""
        off = self.send_offsets[rank]
        return self.send_indices[rank][int(off[dest]):int(off[dest + 1])]

    def recv_view(self, rank: int, src: int) -> np.ndarray:
        """Zero-copy view of ``rank``'s ghost slots for data from ``src``."""
        off = self.recv_offsets[rank]
        return self.recv_slots[rank][int(off[src]):int(off[src + 1])]

    # -- paper's four components, per rank ------------------------------
    def send_list(self, rank: int) -> np.ndarray:
        """All local elements ``rank`` sends, concatenated by destination
        (the native storage — zero-copy)."""
        return self.send_indices[rank]

    def permutation_list(self, rank: int) -> np.ndarray:
        """Ghost-buffer placement order of incoming elements (zero-copy)."""
        return self.recv_slots[rank]

    def send_sizes(self, rank: int) -> np.ndarray:
        return np.diff(self.send_offsets[rank])

    def fetch_sizes(self, rank: int) -> np.ndarray:
        return np.diff(self.recv_offsets[rank])

    # -- aggregate stats -------------------------------------------------
    def total_elements(self) -> int:
        """Off-processor elements moved by one gather with this schedule."""
        return int(self._counts.sum())

    def total_messages(self) -> int:
        """Messages per gather (non-empty (p,q) pairs, p != q)."""
        off_diag = self._counts.copy()
        np.fill_diagonal(off_diag, 0)
        return int(np.count_nonzero(off_diag))

    @classmethod
    def empty(cls, n_ranks: int) -> "Schedule":
        send, send_off = zero_csr(n_ranks)
        recv, recv_off = zero_csr(n_ranks)
        return cls(
            n_ranks=n_ranks,
            send_indices=send,
            send_offsets=send_off,
            recv_slots=recv,
            recv_offsets=recv_off,
            ghost_size=[0] * n_ranks,
        )


def build_schedule(
    ctx,
    htables: list[IndexHashTable],
    expr: StampExpr | str,
    category: str = "inspector",
) -> Schedule:
    """Construct a communication schedule from stamped hash tables.

    ``expr`` selects which entries participate: a stamp name for a plain
    schedule, or a :class:`StampExpr` for merged (``a | b``) and
    incremental (``b - a``) schedules.  This is the paper's
    ``CHAOS_schedule`` primitive (Figure 6).  The context's backend
    selects the schedule-generation strategy (see module docstring).
    """
    ctx = ensure_context(ctx, "build_schedule")
    ctx.machine.check_per_rank(htables, "hash tables")
    return ctx.backend.build_schedule(ctx, htables, expr, category)


def splice_schedules(
    ctx,
    htables: list[IndexHashTable],
    base: Schedule,
    delta: Schedule,
    dropped_bufs: list[np.ndarray],
    category: str = "inspector",
) -> Schedule:
    """Graft a delta schedule into a cached base schedule.

    ``base`` is the schedule cached before an adaptive subset update,
    ``delta`` a schedule built over only the *newly participating*
    entries, and ``dropped_bufs[p]`` the ghost-buffer slots of entries
    that left rank ``p``'s selection.  The result is bitwise-identical
    to a cold rebuild: dropped entries are filtered out of the base
    segments, delta entries are merged in, and each ``(receiver,
    source)`` segment is re-sorted into the canonical cold-build order —
    ascending hash-table slot, recovered through the per-rank
    ghost-buffer → slot inverse (``build_schedule`` selects slots with
    ``np.flatnonzero`` and groups owner-stably, so slot order *is* the
    cold segment order).  Requires ``base`` and ``delta`` to be built
    against the same live table group with no intervening purge (a purge
    recycles ghost slots, retargeting the inverse).
    """
    ctx = ensure_context(ctx, "splice_schedules")
    machine = ctx.machine
    machine.check_per_rank(htables, "hash tables")
    n = base.n_ranks
    if delta.n_ranks != n:
        raise ValueError("base and delta schedules span different machines")
    z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731

    # buf -> slot inverse per rank (live entries only; purged rows carry
    # buf == -1 and never appear)
    inv: list[np.ndarray] = []
    for p in machine.ranks():
        ht = htables[p]
        iv = np.full(ht.ghost_capacity(), -1, dtype=np.int64)
        bufs = ht.buf[: ht.n_entries]
        live = bufs >= 0
        iv[bufs[live]] = np.flatnonzero(live)
        inv.append(iv)
        machine.charge_memops(p, ht.n_entries, category)

    recv_segments: list[list[np.ndarray]] = [[z()] * n for _ in range(n)]
    send_segments: list[list[np.ndarray]] = [[z()] * n for _ in range(n)]
    for p in machine.ranks():  # receiver
        drop = np.asarray(dropped_bufs[p], dtype=np.int64)
        keep = None
        if drop.size:
            # O(1)-per-element membership via a ghost-slot lookup table
            # (the per-segment np.isin sort path dwarfed the splice)
            dropped = np.zeros(htables[p].ghost_capacity(), dtype=bool)
            dropped[drop] = True
            keep = ~dropped[base.recv_slots[p]]
        boff = base.recv_offsets[p]
        merged = 0
        for q in machine.ranks():  # source
            b_recv = base.recv_view(p, q)
            b_send = base.send_view(q, p)
            if keep is not None and b_recv.size:
                kseg = keep[int(boff[q]):int(boff[q + 1])]
                if not kseg.all():
                    b_recv = b_recv[kseg]
                    b_send = b_send[kseg]
            d_recv = delta.recv_view(p, q)
            # dropping preserves the base segment's canonical ascending-
            # slot order, so a sort is only needed when both sides are
            # non-empty and must interleave
            if d_recv.size == 0:
                recv_segments[p][q] = b_recv
                send_segments[q][p] = b_send
                merged += b_recv.size
                continue
            if b_recv.size == 0:
                recv_segments[p][q] = d_recv
                send_segments[q][p] = delta.send_view(q, p)
                merged += d_recv.size
                continue
            # both sides are already in canonical ascending-slot order
            # (disjoint slot sets), so this is a linear merge of two
            # sorted sequences, not a sort
            ib = inv[p][b_recv]
            idv = inv[p][d_recv]
            nb, nd = ib.size, idv.size
            at = np.searchsorted(ib, idv) + np.arange(nd)
            base_at = np.ones(nb + nd, dtype=bool)
            base_at[at] = False
            recv = np.empty(nb + nd, dtype=np.int64)
            send = np.empty(nb + nd, dtype=np.int64)
            recv[at] = d_recv
            recv[base_at] = b_recv
            send[at] = delta.send_view(q, p)
            send[base_at] = b_send
            recv_segments[p][q] = recv
            send_segments[q][p] = send
            merged += recv.size
        machine.charge_memops(p, merged, category)

    from repro.core.compiled import offsets_from_counts

    send_indices, send_offsets = [], []
    recv_slots, recv_offsets = [], []
    for r in machine.ranks():
        s_counts = np.array([send_segments[r][d].size
                             for d in machine.ranks()], dtype=np.int64)
        r_counts = np.array([recv_segments[r][s].size
                             for s in machine.ranks()], dtype=np.int64)
        send_indices.append(
            np.concatenate(send_segments[r]) if s_counts.sum() else z())
        recv_slots.append(
            np.concatenate(recv_segments[r]) if r_counts.sum() else z())
        send_offsets.append(offsets_from_counts(s_counts))
        recv_offsets.append(offsets_from_counts(r_counts))
    return Schedule(
        n_ranks=n,
        send_indices=send_indices,
        send_offsets=send_offsets,
        recv_slots=recv_slots,
        recv_offsets=recv_offsets,
        ghost_size=list(delta.ghost_size),
    )


def merge_schedules(ctx, scheds: list[Schedule],
                    category: str = "inspector") -> Schedule:
    """Merge already-built schedules into one (duplicates NOT removed).

    Prefer building a merged schedule from the hash table via a stamp
    union, which removes duplicates; this helper exists for schedules
    whose hash tables are gone, and for testing the difference between
    the two approaches.
    """
    ctx = ensure_context(ctx, "merge_schedules")
    machine = ctx.machine
    if not scheds:
        raise ValueError("need at least one schedule to merge")
    n = scheds[0].n_ranks
    for s in scheds:
        if s.n_ranks != n:
            raise ValueError("schedules span different machines")
    # per (p, q), input-schedule order is preserved within the segment
    send, send_off = zip(*(
        concat_csr([s.send_view(p, q) for q in range(n) for s in scheds],
                   group=len(scheds))
        for p in range(n)
    ))
    recv, recv_off = zip(*(
        concat_csr([s.recv_view(p, q) for q in range(n) for s in scheds],
                   group=len(scheds))
        for p in range(n)
    ))
    ghost_size = [max(s.ghost_size[p] for s in scheds) for p in range(n)]
    for p in range(n):
        machine.charge_memops(
            p, sum(s.send_sizes(p).sum() for s in scheds), category
        )
    return Schedule(n_ranks=n, send_indices=list(send),
                    send_offsets=list(send_off), recv_slots=list(recv),
                    recv_offsets=list(recv_off), ghost_size=ghost_size)
