"""Communication schedules (paper §3.2.1) and schedule generation.

A schedule for rank ``p`` stores exactly what the paper lists:

1. *send list* — local elements ``p`` must send to each other rank,
2. *permutation list* — where incoming off-processor elements land in
   ``p``'s ghost buffer,
3. *send sizes* and 4. *fetch sizes* — per-destination message sizes.

Schedules are built collectively from the stamped hash tables
(:func:`build_schedule`): each rank selects the off-processor entries
matching a :class:`~repro.core.hashtable.StampExpr`, groups them by owner,
and a request exchange tells every owner which of its local elements other
ranks need.  Merged and incremental schedules fall out of the stamp
algebra for free.

:func:`build_schedule` validates and dispatches to a *backend*
(:mod:`repro.core.backends`): ``serial`` walks every rank pair in Python
(the reference), ``vectorized`` (the default) groups by owner with
argsort/bincount and charges the exchanges from count matrices.  Both
produce bitwise-identical schedules and traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.backends.base import resolve_backend
from repro.core.hashtable import IndexHashTable, StampExpr
from repro.sim.machine import Machine


@dataclass
class Schedule:
    """A built communication schedule, rank-major.

    ``send_indices[p][q]`` — local offsets on ``p`` of elements to send to
    ``q``; ``recv_slots[p][q]`` — ghost-buffer slots on ``p`` where data
    arriving from ``q`` is placed (aligned element-wise with
    ``send_indices[q][p]``); ``ghost_size[p]`` — ghost-buffer slots rank
    ``p`` must allocate.
    """

    n_ranks: int
    send_indices: list[list[np.ndarray]]
    recv_slots: list[list[np.ndarray]]
    ghost_size: list[int]

    def __post_init__(self):
        if len(self.send_indices) != self.n_ranks:
            raise ValueError("send_indices must have one row per rank")
        if len(self.recv_slots) != self.n_ranks:
            raise ValueError("recv_slots must have one row per rank")
        # index arrays are int64 by contract, whatever the caller built
        self.send_indices = [
            [np.asarray(a, dtype=np.int64) for a in row]
            for row in self.send_indices
        ]
        self.recv_slots = [
            [np.asarray(a, dtype=np.int64) for a in row]
            for row in self.recv_slots
        ]
        for p in range(self.n_ranks):
            for q in range(self.n_ranks):
                ns = self.send_indices[p][q].size
                nr = self.recv_slots[q][p].size
                if ns != nr:
                    raise ValueError(
                        f"schedule inconsistent: {p} sends {ns} to {q} "
                        f"but {q} expects {nr}"
                    )

    # -- paper's four components, per rank ------------------------------
    def send_list(self, rank: int) -> np.ndarray:
        """All local elements ``rank`` sends, concatenated by destination."""
        parts = [self.send_indices[rank][q] for q in range(self.n_ranks)]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    def permutation_list(self, rank: int) -> np.ndarray:
        """Ghost-buffer placement order of incoming elements."""
        parts = [self.recv_slots[rank][q] for q in range(self.n_ranks)]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    def send_sizes(self, rank: int) -> np.ndarray:
        return np.array(
            [self.send_indices[rank][q].size for q in range(self.n_ranks)],
            dtype=np.int64,
        )

    def fetch_sizes(self, rank: int) -> np.ndarray:
        return np.array(
            [self.recv_slots[rank][q].size for q in range(self.n_ranks)],
            dtype=np.int64,
        )

    # -- aggregate stats -------------------------------------------------
    def total_elements(self) -> int:
        """Off-processor elements moved by one gather with this schedule."""
        return int(sum(self.send_sizes(p).sum() for p in range(self.n_ranks)))

    def total_messages(self) -> int:
        """Messages per gather (non-empty (p,q) pairs, p != q)."""
        return sum(
            1
            for p in range(self.n_ranks)
            for q in range(self.n_ranks)
            if p != q and self.send_indices[p][q].size
        )

    @classmethod
    def empty(cls, n_ranks: int) -> "Schedule":
        z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
        return cls(
            n_ranks=n_ranks,
            send_indices=[[z() for _ in range(n_ranks)] for _ in range(n_ranks)],
            recv_slots=[[z() for _ in range(n_ranks)] for _ in range(n_ranks)],
            ghost_size=[0] * n_ranks,
        )


def build_schedule(
    machine: Machine,
    htables: list[IndexHashTable],
    expr: StampExpr | str,
    category: str = "inspector",
    backend=None,
) -> Schedule:
    """Construct a communication schedule from stamped hash tables.

    ``expr`` selects which entries participate: a stamp name for a plain
    schedule, or a :class:`StampExpr` for merged (``a | b``) and
    incremental (``b - a``) schedules.  This is the paper's
    ``CHAOS_schedule`` primitive (Figure 6).  ``backend`` selects the
    schedule-generation strategy (see module docstring).
    """
    machine.check_per_rank(htables, "hash tables")
    return resolve_backend(backend).build_schedule(
        machine, htables, expr, category
    )


def merge_schedules(machine: Machine, scheds: list[Schedule],
                    category: str = "inspector") -> Schedule:
    """Merge already-built schedules into one (duplicates NOT removed).

    Prefer building a merged schedule from the hash table via a stamp
    union, which removes duplicates; this helper exists for schedules
    whose hash tables are gone, and for testing the difference between
    the two approaches.
    """
    if not scheds:
        raise ValueError("need at least one schedule to merge")
    n = scheds[0].n_ranks
    for s in scheds:
        if s.n_ranks != n:
            raise ValueError("schedules span different machines")
    send_indices = [
        [np.concatenate([s.send_indices[p][q] for s in scheds]).astype(np.int64)
         for q in range(n)]
        for p in range(n)
    ]
    recv_slots = [
        [np.concatenate([s.recv_slots[p][q] for s in scheds]).astype(np.int64)
         for q in range(n)]
        for p in range(n)
    ]
    ghost_size = [max(s.ghost_size[p] for s in scheds) for p in range(n)]
    for p in range(n):
        machine.charge_memops(
            p, sum(s.send_sizes(p).sum() for s in scheds), category
        )
    return Schedule(n_ranks=n, send_indices=send_indices,
                    recv_slots=recv_slots, ghost_size=ghost_size)
