"""Translation tables: the CHAOS record of an irregular distribution.

A translation table lists, for every global array element, its *home
processor* and *offset address* (paper §3.1, item 1).  The paper notes the
table "may be replicated, distributed regularly, or stored in a paged
fashion, depending on storage requirements" — all three storage policies
are implemented here, with their different lookup costs:

``replicated``
    Every rank holds the whole table.  Build pays an all-gather; lookups
    are local.  This is what the paper used for CHARMM and DSMC.
``distributed``
    Table entries are block-distributed by global index.  A lookup for a
    remotely-homed entry costs a request/reply exchange (the "costly part
    of index analysis" the paper mentions in §3.2.2).
``paged``
    Like ``distributed`` but ranks cache fetched pages, so repeated
    lookups of nearby indices hit the local page cache.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import ensure_context
from repro.core.distribution import (
    BlockDistribution,
    Distribution,
    IrregularDistribution,
)
from repro.sim.machine import Machine

_ENTRY_BYTES = 12  # (proc: int32, offset: int64) per table entry


class _PageCache:
    """One rank's cache of translation-table pages, LRU under a budget.

    The canonical storage is a sorted int64 array of resident page ids,
    *incrementally* maintained (``np.union1d`` on bulk admits, batched
    ``np.setdiff1d`` on evictions) — never rebuilt from a set on a miss.
    A page→tick map carries recency; :meth:`admit` is the one entry point
    both backends drive, so cache state (and therefore charged re-fetch
    traffic) is identical whichever backend performs the lookups.
    """

    __slots__ = ("_arr", "_last_used", "_tick", "hits", "misses",
                 "evictions")

    def __init__(self) -> None:
        self._arr = np.zeros(0, dtype=np.int64)  # sorted resident pages
        self._last_used: dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return int(self._arr.size)

    def __contains__(self, page: int) -> bool:
        return int(page) in self._last_used

    def update(self, pages) -> None:
        """Bulk-ingest pages (no recency bump, no eviction)."""
        pages = np.asarray(
            pages if isinstance(pages, np.ndarray) else list(pages),
            dtype=np.int64,
        )
        if pages.size == 0:
            return
        fresh = np.setdiff1d(pages, self._arr)
        if fresh.size:
            self._arr = np.union1d(self._arr, fresh)
            t = self._tick
            lu = self._last_used
            for pg in fresh.tolist():
                lu[pg] = t

    def admit(self, uniq_pages: np.ndarray,
              max_pages: int | None) -> np.ndarray:
        """One collective lookup: touch resident pages, admit the rest.

        ``uniq_pages`` must be sorted unique page ids.  Returns the pages
        that were missing (the ones whose fetch must be charged).  After
        admitting, evicts least-recently-used pages down to ``max_pages``
        (``None`` = unbounded) — an evicted page's next lookup misses
        again and re-charges its fetch traffic.
        """
        self._tick += 1
        t = self._tick
        uniq_pages = np.asarray(uniq_pages, dtype=np.int64)
        if self._arr.size and uniq_pages.size:
            present = np.isin(uniq_pages, self._arr)
        else:
            present = np.zeros(uniq_pages.size, dtype=bool)
        missing = uniq_pages[~present]
        lu = self._last_used
        for pg in uniq_pages.tolist():
            lu[pg] = t
        self.hits += int(np.count_nonzero(present))
        self.misses += int(missing.size)
        if missing.size:
            self._arr = np.union1d(self._arr, missing)
        if max_pages is not None and self._arr.size > max_pages:
            self._evict_to(max_pages)
        return missing

    def _evict_to(self, max_pages: int) -> None:
        n_evict = int(self._arr.size) - int(max_pages)
        lu = self._last_used
        pages = self._arr
        ticks = np.fromiter((lu[pg] for pg in pages.tolist()),
                            dtype=np.int64, count=pages.size)
        # oldest tick first; page id breaks ties deterministically
        order = np.lexsort((pages, ticks))
        victims = pages[order[:n_evict]]
        self._arr = np.setdiff1d(pages, victims, assume_unique=True)
        for pg in victims.tolist():
            del lu[pg]
        self.evictions += n_evict

    def clear(self) -> None:
        self._arr = np.zeros(0, dtype=np.int64)
        self._last_used.clear()

    def as_array(self) -> np.ndarray:
        """Sorted int64 array of cached page ids (the live storage)."""
        return self._arr


class TranslationTable:
    """Globally accessible (owner, offset) directory for one distribution.

    Construct via :meth:`from_distribution` or :meth:`from_map` so that
    build-time communication is charged to the machine.
    """

    VALID_STORAGE = ("replicated", "distributed", "paged")

    def __init__(
        self,
        machine: Machine,
        dist: Distribution,
        storage: str = "replicated",
        page_size: int = 1024,
    ):
        if storage not in self.VALID_STORAGE:
            raise ValueError(
                f"storage must be one of {self.VALID_STORAGE}, got {storage!r}"
            )
        if page_size < 1:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.machine = machine
        self.dist = dist
        self.storage = storage
        self.page_size = int(page_size)
        # Physical content (simulation holds it centrally; the storage
        # policy only affects *charged* communication).
        self._owners = dist.owner(np.arange(dist.n_global, dtype=np.int64)) \
            if dist.n_global else np.zeros(0, dtype=np.int64)
        self._offsets = dist.local_index(np.arange(dist.n_global, dtype=np.int64)) \
            if dist.n_global else np.zeros(0, dtype=np.int64)
        # Table homes for distributed/paged storage: block by global index.
        self._table_dist = BlockDistribution(dist.n_global, machine.n_ranks)
        # Per-rank page caches (paged mode only).
        self._page_cache: list[_PageCache] = [_PageCache()
                                              for _ in machine.ranks()]
        self._charge_build()

    # ------------------------------------------------------------------
    @classmethod
    def from_map(
        cls,
        machine: Machine,
        map_array,
        storage: str = "replicated",
        page_size: int = 1024,
    ) -> "TranslationTable":
        """Build from a Fortran D ``map`` array (owner per element)."""
        dist = IrregularDistribution(map_array, machine.n_ranks)
        return cls(machine, dist, storage=storage, page_size=page_size)

    @classmethod
    def from_distribution(
        cls,
        machine: Machine,
        dist: Distribution,
        storage: str = "replicated",
        page_size: int = 1024,
    ) -> "TranslationTable":
        return cls(machine, dist, storage=storage, page_size=page_size)

    # ------------------------------------------------------------------
    def _charge_build(self) -> None:
        """Charge the communication needed to assemble the table."""
        m = self.machine
        n = self.dist.n_global
        if n == 0:
            # an empty distribution has no entries to gather or route;
            # charging a collective here would bill phantom traffic
            return
        if self.storage == "replicated":
            # Each rank contributes its slice; all-gather replicates it.
            share = np.zeros(max(1, n // max(1, m.n_ranks)), dtype=np.int64)
            m.allgather([share] * m.n_ranks, tag="ttable_build",
                        category="partition")
        else:
            # Entries only need to reach their block-home rank: one
            # all-to-all of ~n/P entries per rank.
            per = max(0, n // max(1, m.n_ranks))
            buf = np.zeros(per, dtype=np.int64)
            send = [[buf if p != q else None for q in m.ranks()]
                    for p in m.ranks()]
            m.alltoallv(send, tag="ttable_build", category="partition")

    # ------------------------------------------------------------------
    def memory_per_rank(self, rank: int) -> int:
        """Bytes of table storage held by ``rank`` under this policy."""
        n = self.dist.n_global
        if self.storage == "replicated":
            return n * _ENTRY_BYTES
        if self.storage == "distributed":
            return self._table_dist.local_size(rank) * _ENTRY_BYTES
        cached = len(self._page_cache[rank]) * self.page_size
        return (self._table_dist.local_size(rank) + cached) * _ENTRY_BYTES

    def clear_page_caches(self) -> None:
        for c in self._page_cache:
            c.clear()

    def page_budget(self, ctx) -> int | None:
        """Max resident pages per rank under the context's byte budget.

        ``None`` (no ``page_budget_bytes`` on the context) leaves the
        caches unbounded — the pre-budget behaviour.
        """
        budget = getattr(ctx, "page_budget_bytes", None)
        if budget is None:
            return None
        return int(budget) // (self.page_size * _ENTRY_BYTES)

    def page_resident_bytes(self, rank: int) -> int:
        """Bytes of cached (not block-home) table pages held by ``rank``."""
        return len(self._page_cache[rank]) * self.page_size * _ENTRY_BYTES

    def page_stats(self) -> dict[str, int]:
        """Aggregate page-cache counters across ranks (paged mode only)."""
        out = {"pages": 0, "hits": 0, "misses": 0, "evictions": 0,
               "resident_bytes": 0}
        for p in self.machine.ranks():
            c = self._page_cache[p]
            out["pages"] += len(c)
            out["hits"] += c.hits
            out["misses"] += c.misses
            out["evictions"] += c.evictions
            out["resident_bytes"] += self.page_resident_bytes(p)
        return out

    # ------------------------------------------------------------------
    def dereference(
        self,
        ctx,
        queries: list[np.ndarray | None],
        category: str = "inspector",
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Collective lookup: each rank presents global indices, receives
        (owner, offset) arrays aligned with its query order.

        ``queries[p]`` may be ``None`` (no lookups on rank ``p``).  The
        lookup cost under this table's storage policy is charged by the
        context's *backend* (:mod:`repro.core.backends`): serial walks
        rank pairs and pages in Python, vectorized (the default) builds
        bincount request matrices; both charge identical traffic.
        """
        ctx = ensure_context(ctx, "TranslationTable.dereference")
        m = self.machine
        if ctx.machine is not m:
            raise ValueError(
                "context machine differs from the table's machine"
            )
        m.check_per_rank(queries, "queries")
        qs = [
            np.zeros(0, dtype=np.int64) if q is None
            else self.dist.check_indices(q)
            for q in queries
        ]
        ctx.backend.translation_lookup(ctx, self, qs, category)
        owners = [self._owners[q] for q in qs]
        offsets = [self._offsets[q] for q in qs]
        return owners, offsets

    # ------------------------------------------------------------------
    def owner_local(self, indices) -> np.ndarray:
        """Uncharged owner lookup (host-side convenience for tests/apps)."""
        return self._owners[self.dist.check_indices(indices)]

    def offset_local(self, indices) -> np.ndarray:
        """Uncharged offset lookup (host-side convenience)."""
        return self._offsets[self.dist.check_indices(indices)]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TranslationTable(n={self.dist.n_global}, storage={self.storage!r},"
            f" ranks={self.machine.n_ranks})"
        )
