"""Translation tables: the CHAOS record of an irregular distribution.

A translation table lists, for every global array element, its *home
processor* and *offset address* (paper §3.1, item 1).  The paper notes the
table "may be replicated, distributed regularly, or stored in a paged
fashion, depending on storage requirements" — all three storage policies
are implemented here, with their different lookup costs:

``replicated``
    Every rank holds the whole table.  Build pays an all-gather; lookups
    are local.  This is what the paper used for CHARMM and DSMC.
``distributed``
    Table entries are block-distributed by global index.  A lookup for a
    remotely-homed entry costs a request/reply exchange (the "costly part
    of index analysis" the paper mentions in §3.2.2).
``paged``
    Like ``distributed`` but ranks cache fetched pages, so repeated
    lookups of nearby indices hit the local page cache.
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import (
    BlockDistribution,
    Distribution,
    IrregularDistribution,
)
from repro.sim.machine import Machine

_ENTRY_BYTES = 12  # (proc: int32, offset: int64) per table entry


class TranslationTable:
    """Globally accessible (owner, offset) directory for one distribution.

    Construct via :meth:`from_distribution` or :meth:`from_map` so that
    build-time communication is charged to the machine.
    """

    VALID_STORAGE = ("replicated", "distributed", "paged")

    def __init__(
        self,
        machine: Machine,
        dist: Distribution,
        storage: str = "replicated",
        page_size: int = 1024,
    ):
        if storage not in self.VALID_STORAGE:
            raise ValueError(
                f"storage must be one of {self.VALID_STORAGE}, got {storage!r}"
            )
        if page_size < 1:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.machine = machine
        self.dist = dist
        self.storage = storage
        self.page_size = int(page_size)
        # Physical content (simulation holds it centrally; the storage
        # policy only affects *charged* communication).
        self._owners = dist.owner(np.arange(dist.n_global, dtype=np.int64)) \
            if dist.n_global else np.zeros(0, dtype=np.int64)
        self._offsets = dist.local_index(np.arange(dist.n_global, dtype=np.int64)) \
            if dist.n_global else np.zeros(0, dtype=np.int64)
        # Table homes for distributed/paged storage: block by global index.
        self._table_dist = BlockDistribution(dist.n_global, machine.n_ranks)
        # Per-rank page caches (paged mode only).
        self._page_cache: list[set[int]] = [set() for _ in machine.ranks()]
        self._charge_build()

    # ------------------------------------------------------------------
    @classmethod
    def from_map(
        cls,
        machine: Machine,
        map_array,
        storage: str = "replicated",
        page_size: int = 1024,
    ) -> "TranslationTable":
        """Build from a Fortran D ``map`` array (owner per element)."""
        dist = IrregularDistribution(map_array, machine.n_ranks)
        return cls(machine, dist, storage=storage, page_size=page_size)

    @classmethod
    def from_distribution(
        cls,
        machine: Machine,
        dist: Distribution,
        storage: str = "replicated",
        page_size: int = 1024,
    ) -> "TranslationTable":
        return cls(machine, dist, storage=storage, page_size=page_size)

    # ------------------------------------------------------------------
    def _charge_build(self) -> None:
        """Charge the communication needed to assemble the table."""
        m = self.machine
        n = self.dist.n_global
        if self.storage == "replicated":
            # Each rank contributes its slice; all-gather replicates it.
            share = np.zeros(max(1, n // max(1, m.n_ranks)), dtype=np.int64)
            m.allgather([share] * m.n_ranks, tag="ttable_build",
                        category="partition")
        else:
            # Entries only need to reach their block-home rank: one
            # all-to-all of ~n/P entries per rank.
            per = max(0, n // max(1, m.n_ranks))
            buf = np.zeros(per, dtype=np.int64)
            send = [[buf if p != q else None for q in m.ranks()]
                    for p in m.ranks()]
            m.alltoallv(send, tag="ttable_build", category="partition")

    # ------------------------------------------------------------------
    def memory_per_rank(self, rank: int) -> int:
        """Bytes of table storage held by ``rank`` under this policy."""
        n = self.dist.n_global
        if self.storage == "replicated":
            return n * _ENTRY_BYTES
        if self.storage == "distributed":
            return self._table_dist.local_size(rank) * _ENTRY_BYTES
        cached = len(self._page_cache[rank]) * self.page_size
        return (self._table_dist.local_size(rank) + cached) * _ENTRY_BYTES

    def clear_page_caches(self) -> None:
        for c in self._page_cache:
            c.clear()

    # ------------------------------------------------------------------
    def dereference(
        self,
        queries: list[np.ndarray | None],
        category: str = "inspector",
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Collective lookup: each rank presents global indices, receives
        (owner, offset) arrays aligned with its query order.

        ``queries[p]`` may be ``None`` (no lookups on rank ``p``).
        """
        m = self.machine
        m.check_per_rank(queries, "queries")
        qs = [
            np.zeros(0, dtype=np.int64) if q is None
            else self.dist.check_indices(q)
            for q in queries
        ]
        if self.storage == "replicated":
            for p in m.ranks():
                m.charge_memops(p, qs[p].size, category)
        elif self.storage == "distributed":
            self._charge_remote_lookup(qs, category, use_cache=False)
        else:  # paged
            self._charge_remote_lookup(qs, category, use_cache=True)
        owners = [self._owners[q] for q in qs]
        offsets = [self._offsets[q] for q in qs]
        return owners, offsets

    def _charge_remote_lookup(
        self, qs: list[np.ndarray], category: str, use_cache: bool
    ) -> None:
        """Charge the request/reply exchange for non-replicated tables."""
        m = self.machine
        request_counts = [[0] * m.n_ranks for _ in m.ranks()]
        for p in m.ranks():
            q = qs[p]
            if q.size == 0:
                continue
            homes = self._table_dist.owner(q)
            if use_cache:
                pages = q // self.page_size
                cache = self._page_cache[p]
                uniq_pages, first_idx = np.unique(pages, return_index=True)
                missing = [pg for pg in uniq_pages.tolist() if pg not in cache]
                cache.update(missing)
                # only missing pages generate requests, whole pages return
                for pg in missing:
                    home = int(self._table_dist.owner(
                        np.array([min(pg * self.page_size,
                                      self.dist.n_global - 1)], dtype=np.int64)
                    )[0])
                    request_counts[p][home] += self.page_size
                m.charge_memops(p, q.size, category)  # local cache probes
            else:
                uniq_homes, counts = np.unique(homes, return_counts=True)
                for h, c in zip(uniq_homes.tolist(), counts.tolist()):
                    request_counts[p][h] += int(c)
        # request: 8 bytes/index; reply: _ENTRY_BYTES per entry
        req = [
            [np.zeros(request_counts[p][h], dtype=np.int64)
             if request_counts[p][h] and p != h else None
             for h in m.ranks()]
            for p in m.ranks()
        ]
        m.alltoallv(req, tag="ttable_lookup_req", category=category)
        rep = [
            [np.zeros(request_counts[q][h] * _ENTRY_BYTES // 8, dtype=np.int64)
             if request_counts[q][h] and q != h else None
             for q in m.ranks()]
            for h in m.ranks()
        ]
        rep = [[rep[h][q] for q in m.ranks()] for h in m.ranks()]
        m.alltoallv(rep, tag="ttable_lookup_rep", category=category)
        for h in m.ranks():
            served = sum(request_counts[p][h] for p in m.ranks())
            m.charge_memops(h, served, category)

    # ------------------------------------------------------------------
    def owner_local(self, indices) -> np.ndarray:
        """Uncharged owner lookup (host-side convenience for tests/apps)."""
        return self._owners[self.dist.check_indices(indices)]

    def offset_local(self, indices) -> np.ndarray:
        """Uncharged offset lookup (host-side convenience)."""
        return self._offsets[self.dist.check_indices(indices)]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TranslationTable(n={self.dist.n_global}, storage={self.storage!r},"
            f" ranks={self.machine.n_ranks})"
        )
