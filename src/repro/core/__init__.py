"""CHAOS core runtime: the paper's primary contribution.

Inspector/executor runtime support for adaptive irregular problems:
translation tables, stamped index-analysis hash tables, communication
schedules (regular, merged, incremental, light-weight), data
transportation primitives, remapping, and iteration partitioning.
"""

from repro.core.context import ExecutionContext
from repro.core.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    IrregularDistribution,
)
from repro.core.translation import TranslationTable
from repro.core.hashtable import (
    DictKeyStore,
    IndexHashTable,
    OpenAddressedKeyStore,
    StampExpr,
    StampRegistry,
)
from repro.core.schedule import Schedule, build_schedule, merge_schedules
from repro.core.lightweight import (
    LightweightSchedule,
    append_phase,
    build_lightweight_schedule,
    scatter_append,
    scatter_append_multi,
)
from repro.core.inspector import (
    chaos_hash,
    clear_stamp,
    localize_only,
    make_hash_tables,
)
from repro.core.executor import (
    PipelinePhase,
    allocate_ghosts,
    fusable,
    gather,
    gather_phase,
    run_pipeline,
    scatter,
    scatter_op,
    scatter_op_phase,
    scatter_phase,
    stack_local_ghost,
    split_local_ghost,
)
from repro.core.remap import (
    RemapPlan,
    remap,
    remap_array,
    remap_global_values,
    remap_phase,
)
from repro.core.backends import (
    Backend,
    BackendResources,
    SerialBackend,
    ThreadedBackend,
    VectorizedBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.compiled import (
    CompiledLightweightSchedule,
    CompiledPlan,
    CompiledRemapPlan,
    CompiledSchedule,
    FusedPlan,
    FusedStage,
    StageBind,
    compile_fused,
    compile_lightweight_schedule,
    compile_remap_plan,
    compile_schedule,
)
from repro.core.iteration import (
    IterationAssignment,
    block_iteration_slices,
    partition_iterations,
    split_by_block,
)
from repro.core.reuse import ModificationRecord, ScheduleCache
from repro.core.api import ChaosRuntime, DistributedArray, IrregularReduction
from repro.core.verify import (
    check_distribution,
    check_lightweight,
    check_remap_plan,
    check_schedule,
    check_schedule_against_hash_tables,
    check_translation_table,
)

__all__ = [
    "ExecutionContext",
    "BlockCyclicDistribution",
    "BlockDistribution",
    "CyclicDistribution",
    "Distribution",
    "IrregularDistribution",
    "TranslationTable",
    "DictKeyStore",
    "IndexHashTable",
    "OpenAddressedKeyStore",
    "StampExpr",
    "StampRegistry",
    "Schedule",
    "build_schedule",
    "merge_schedules",
    "LightweightSchedule",
    "append_phase",
    "build_lightweight_schedule",
    "scatter_append",
    "scatter_append_multi",
    "chaos_hash",
    "clear_stamp",
    "localize_only",
    "make_hash_tables",
    "PipelinePhase",
    "allocate_ghosts",
    "fusable",
    "gather",
    "gather_phase",
    "run_pipeline",
    "scatter",
    "scatter_op",
    "scatter_op_phase",
    "scatter_phase",
    "stack_local_ghost",
    "split_local_ghost",
    "RemapPlan",
    "remap",
    "remap_array",
    "remap_global_values",
    "remap_phase",
    "Backend",
    "BackendResources",
    "SerialBackend",
    "ThreadedBackend",
    "VectorizedBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "CompiledLightweightSchedule",
    "CompiledPlan",
    "CompiledRemapPlan",
    "CompiledSchedule",
    "FusedPlan",
    "FusedStage",
    "StageBind",
    "compile_fused",
    "compile_lightweight_schedule",
    "compile_remap_plan",
    "compile_schedule",
    "IterationAssignment",
    "block_iteration_slices",
    "partition_iterations",
    "split_by_block",
    "ModificationRecord",
    "ScheduleCache",
    "ChaosRuntime",
    "DistributedArray",
    "IrregularReduction",
    "check_distribution",
    "check_lightweight",
    "check_remap_plan",
    "check_schedule",
    "check_schedule_against_hash_tables",
    "check_translation_table",
]
