"""Compiled (flattened) communication plans.

The nested rank-major schedules (:class:`~repro.core.schedule.Schedule`,
:class:`~repro.core.lightweight.LightweightSchedule`,
:class:`~repro.core.remap.RemapPlan`) store one small array per ``(p, q)``
rank pair.  Executing them directly means O(P²) Python-level loop
iterations per collective — an interpreter-bound hot path.

A *compiled* plan flattens each rank's per-destination arrays into
CSR-style storage (one concatenated index vector plus a per-destination
offset vector) and precomputes a single global permutation that reorders
the machine-wide *send stream* (sender-major, destination-minor) into the
machine-wide *receive stream* (receiver-major, source-minor).  With those
arrays in hand an executor backend can move all data for a collective with
a handful of fused numpy operations — one ``take`` per rank plus one
permutation — regardless of how many rank pairs communicate.

Compilation is performed once per schedule and cached on the schedule
object itself (schedules are immutable after construction), so repeated
executor calls — the common case the paper's inspector/executor split is
built around — pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_CACHE_ATTR = "_compiled_plan"


@dataclass
class CompiledPlan:
    """Flat CSR-style form of a rank-major communication plan.

    ``send_idx[p]`` concatenates rank ``p``'s pack selections over all
    destinations (destination-ascending); ``send_off[p]`` is the
    ``(n_ranks + 1,)`` offset vector delimiting each destination's
    segment.  ``place_idx[p]`` (when the plan places, rather than
    appends) concatenates the placement slots in *receive-stream* order —
    the order arrivals appear after applying :attr:`perm`.

    ``perm`` maps the global send stream to the global receive stream:
    ``recv_stream = send_stream[perm]``.  ``send_base``/``recv_base``
    delimit each rank's slice of the respective global stream.
    """

    n_ranks: int
    send_idx: list[np.ndarray]
    send_off: list[np.ndarray]
    place_idx: list[np.ndarray] | None
    counts: np.ndarray          # (n, n): counts[p, q] = elements p -> q
    send_base: np.ndarray       # (n + 1,) global send-stream offsets
    recv_base: np.ndarray       # (n + 1,) global receive-stream offsets
    perm: np.ndarray            # send stream -> receive stream
    send_max: np.ndarray        # (n,) max pack index per rank (-1 if none)
    _inv_perm: np.ndarray | None = field(default=None, repr=False)
    _layouts: dict = field(default_factory=dict, repr=False)

    @property
    def total(self) -> int:
        """Elements moved machine-wide (including rank-local segments)."""
        return int(self.perm.size)

    def inv_perm(self) -> np.ndarray:
        """Receive-stream -> send-stream permutation (lazily computed).

        Used by reverse-direction collectives (scatter): values packed in
        receive-stream order are delivered to send-stream positions.
        """
        if self._inv_perm is None:
            inv = np.empty(self.perm.size, dtype=np.int64)
            inv[self.perm] = np.arange(self.perm.size, dtype=np.int64)
            self._inv_perm = inv
        return self._inv_perm

    def recv_slice(self, rank: int, k: int = 1) -> slice:
        """Slice of the global receive stream holding ``rank``'s arrivals.

        ``k`` scales the bounds for flattened (scalar-element) streams.
        """
        return slice(int(self.recv_base[rank]) * k,
                     int(self.recv_base[rank + 1]) * k)

    def send_slice(self, rank: int, k: int = 1) -> slice:
        """Slice of the global send stream packed by ``rank``."""
        return slice(int(self.send_base[rank]) * k,
                     int(self.send_base[rank + 1]) * k)

    # -- composed flat layouts (cached per data layout) -----------------
    #
    # The simulated machine holds every rank's data in one process, so a
    # collective can be executed as ONE flat gather over the per-rank
    # arrays concatenated along axis 0.  The compositions below fold the
    # pack selection, the global permutation, and the row→scalar
    # expansion into single precomputed index vectors, keyed by the
    # concatenation layout (per-rank leading sizes) and the row width
    # ``k`` — both stable across executor calls in steady state.

    def forward_flat(self, sizes: tuple[int, ...], k: int) -> np.ndarray:
        """Scalar gather indices into ravel(concat(source arrays)),
        ordered as the global receive stream."""
        key = ("fwd", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            base = np.zeros(self.n_ranks + 1, dtype=np.int64)
            np.cumsum(np.asarray(sizes, dtype=np.int64), out=base[1:])
            rows = np.concatenate(
                [self.send_idx[p] + base[p] for p in range(self.n_ranks)]
            ) if self.total else np.zeros(0, dtype=np.int64)
            out = _expand(rows[self.perm], k)
            self._layouts[key] = out
        return out

    def reverse_flat(self, sizes: tuple[int, ...], k: int) -> np.ndarray:
        """Scalar gather indices into ravel(concat(ghost arrays)),
        ordered as the global *send* stream (the scatter direction)."""
        key = ("rev", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            base = np.zeros(self.n_ranks + 1, dtype=np.int64)
            np.cumsum(np.asarray(sizes, dtype=np.int64), out=base[1:])
            rows = np.concatenate(
                [self.place_idx[p] + base[p] for p in range(self.n_ranks)]
            ) if self.total else np.zeros(0, dtype=np.int64)
            out = _expand(rows[self.inv_perm()], k)
            self._layouts[key] = out
        return out

    def place_flat(self, k: int) -> list[np.ndarray]:
        """Per-rank scalar placement indices (``place_idx`` expanded)."""
        key = ("place", k)
        out = self._layouts.get(key)
        if out is None:
            out = [_expand(a, k) for a in self.place_idx]
            self._layouts[key] = out
        return out

    def send_flat(self, k: int) -> list[np.ndarray]:
        """Per-rank scalar apply indices (``send_idx`` expanded)."""
        key = ("send", k)
        out = self._layouts.get(key)
        if out is None:
            out = [_expand(a, k) for a in self.send_idx]
            self._layouts[key] = out
        return out


class CompiledSchedule(CompiledPlan):
    """Compiled form of :class:`~repro.core.schedule.Schedule`."""


class CompiledLightweightSchedule(CompiledPlan):
    """Compiled form of a light-weight (append-order) schedule.

    ``place_idx`` is ``None``: arrivals append, they are never permuted
    into prescribed slots.  The receive stream for rank ``p`` is ordered
    kept-local first, then arrivals by source rank — matching
    :func:`repro.core.lightweight.scatter_append` semantics exactly.
    """


class CompiledRemapPlan(CompiledPlan):
    """Compiled form of :class:`~repro.core.remap.RemapPlan`."""


def _expand(rows: np.ndarray, k: int) -> np.ndarray:
    """Row indices → scalar indices for a raveled ``(n, k)`` array."""
    if k == 1:
        return rows
    return (rows[:, None] * k + np.arange(k, dtype=np.int64)).reshape(-1)


def split_csr(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Split a CSR-flattened array into its per-segment views.

    ``offsets`` is the ``(n_segments + 1,)`` delimiter vector; segment
    ``i`` is ``flat[offsets[i]:offsets[i + 1]]``.  The inverse of the
    concatenation the compiled plans (and the vectorized inspector's
    owner-grouped request lists) are built from; returns views, not
    copies.
    """
    return [flat[int(offsets[i]):int(offsets[i + 1])]
            for i in range(offsets.size - 1)]


def _source_order(n: int, rank: int, self_first: bool) -> list[int]:
    if not self_first:
        return list(range(n))
    return [rank] + [q for q in range(n) if q != rank]


def _compile(
    cls,
    n: int,
    send_rows: list[list[np.ndarray]],
    place_rows: list[list[np.ndarray]] | None,
    self_first: bool = False,
) -> CompiledPlan:
    counts = np.zeros((n, n), dtype=np.int64)
    for p in range(n):
        for q in range(n):
            counts[p, q] = send_rows[p][q].size

    send_idx: list[np.ndarray] = []
    send_off: list[np.ndarray] = []
    send_max = np.full(n, -1, dtype=np.int64)
    for p in range(n):
        off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts[p], out=off[1:])
        flat = (
            np.concatenate([np.asarray(a, dtype=np.int64)
                            for a in send_rows[p]])
            if off[-1] else np.zeros(0, dtype=np.int64)
        )
        send_idx.append(flat)
        send_off.append(off)
        if flat.size:
            send_max[p] = flat.max()

    send_base = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts.sum(axis=1), out=send_base[1:])
    recv_base = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts.sum(axis=0), out=recv_base[1:])

    pieces: list[np.ndarray] = []
    place_idx: list[np.ndarray] | None = [] if place_rows is not None else None
    for p in range(n):  # receiver
        slot_parts: list[np.ndarray] = []
        for q in _source_order(n, p, self_first):  # sender
            c = int(counts[q, p])
            if c:
                start = int(send_base[q] + send_off[q][p])
                pieces.append(np.arange(start, start + c, dtype=np.int64))
                if place_rows is not None:
                    slot_parts.append(
                        np.asarray(place_rows[p][q], dtype=np.int64)
                    )
        if place_idx is not None:
            place_idx.append(
                np.concatenate(slot_parts) if slot_parts
                else np.zeros(0, dtype=np.int64)
            )
    perm = (
        np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
    )
    return cls(
        n_ranks=n,
        send_idx=send_idx,
        send_off=send_off,
        place_idx=place_idx,
        counts=counts,
        send_base=send_base,
        recv_base=recv_base,
        perm=perm,
        send_max=send_max,
    )


def _cached(sched, builder):
    plan = getattr(sched, _CACHE_ATTR, None)
    if plan is None:
        plan = builder()
        setattr(sched, _CACHE_ATTR, plan)
    return plan


def compile_schedule(sched) -> CompiledSchedule:
    """Flatten a :class:`Schedule`; cached on the schedule object."""
    return _cached(
        sched,
        lambda: _compile(
            CompiledSchedule, sched.n_ranks, sched.send_indices,
            sched.recv_slots,
        ),
    )


def compile_lightweight_schedule(sched) -> CompiledLightweightSchedule:
    """Flatten a :class:`LightweightSchedule`; cached on the schedule."""
    return _cached(
        sched,
        lambda: _compile(
            CompiledLightweightSchedule, sched.n_ranks, sched.send_sel,
            None, self_first=True,
        ),
    )


def compile_remap_plan(plan) -> CompiledRemapPlan:
    """Flatten a :class:`RemapPlan`; cached on the plan object."""
    return _cached(
        plan,
        lambda: _compile(
            CompiledRemapPlan, plan.n_ranks, plan.send_sel, plan.place_sel,
        ),
    )
