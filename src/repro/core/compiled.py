"""Compiled communication plans and shared CSR-layout helpers.

The schedules themselves (:class:`~repro.core.schedule.Schedule`,
:class:`~repro.core.lightweight.LightweightSchedule`,
:class:`~repro.core.remap.RemapPlan`) are CSR-native: each rank stores
one concatenated int64 index vector plus a per-partner offset vector.
The helpers here (:func:`concat_csr`, :func:`split_csr`,
:func:`csr_counts`, :func:`grouped_arange`, :func:`stream_perm`) define
that layout in one place for builders and consumers alike.

A *compiled* plan adds the machine-wide view on top: a single global
permutation that reorders the machine-wide *send stream* (sender-major,
destination-minor) into the machine-wide *receive stream*
(receiver-major, source-minor).  With those arrays in hand an executor
backend can move all data for a collective with a handful of fused numpy
operations — one ``take`` per rank plus one permutation — regardless of
how many rank pairs communicate.  Because the schedules already store
flat buffers, compilation performs no flattening of its own: it shares
the schedule's arrays and only derives the count matrix and the global
permutation.

Compilation is performed once per schedule and cached on the schedule
object itself (schedules are immutable after construction), so repeated
executor calls — the common case the paper's inspector/executor split is
built around — pay nothing.

On top of single plans sits *plan fusion*: a :class:`FusedPlan` composes
a chain of compiled plans (a schedule gather feeding a scatter/apply, a
schedule + lightweight + remap sequence in one loop body) into one
combined execution — a single scratch stream per stage plus one
pack/permute/apply index triple each, all lazily derived from the
per-plan caches above and cached on the lead plan alongside the
``_cached`` compile results.  Backends execute it through
``Backend.run_fused``; legality is decided by the executor layer
(:func:`repro.core.executor.fusable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

_CACHE_ATTR = "_compiled_plan"
_FUSED_CACHE_ATTR = "_fused_plans"


# ---------------------------------------------------------------------
# CSR layout helpers
# ---------------------------------------------------------------------
def concat_csr(parts, group: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate arrays into a ``(flat, offsets)`` CSR pair.

    ``offsets`` delimits one segment per part; with ``group > 1`` every
    ``group`` consecutive parts fold into a single segment (used when
    merging schedules: one segment per destination, several source
    schedules each).  ``flat`` is int64, ``offsets`` has
    ``len(parts) // group + 1`` entries.
    """
    sizes = np.array([np.asarray(a).size for a in parts], dtype=np.int64)
    if group > 1:
        sizes = sizes.reshape(-1, group).sum(axis=1)
    offsets = offsets_from_counts(sizes)
    if offsets[-1]:
        flat = np.concatenate(
            [np.asarray(a, dtype=np.int64).ravel() for a in parts]
        )
    else:
        flat = np.zeros(0, dtype=np.int64)
    return flat, offsets


def split_csr(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Split a CSR-flattened array into its per-segment views.

    ``offsets`` is the ``(n_segments + 1,)`` delimiter vector; segment
    ``i`` is ``flat[offsets[i]:offsets[i + 1]]``.  The inverse of
    :func:`concat_csr`; returns views, not copies.
    """
    return [flat[int(offsets[i]):int(offsets[i + 1])]
            for i in range(offsets.size - 1)]


def csr_counts(offsets: list[np.ndarray]) -> np.ndarray:
    """Per-rank offset vectors → dense ``(n, n)`` segment-size matrix."""
    return np.diff(np.stack(offsets), axis=1)


def offsets_from_counts(counts_row: np.ndarray) -> np.ndarray:
    """Segment sizes → the ``(n + 1,)`` CSR offset vector (inverse of
    ``np.diff``; the one construction every builder performs)."""
    off = np.zeros(counts_row.size + 1, dtype=np.int64)
    np.cumsum(counts_row, out=off[1:])
    return off


def normalize_csr(
    flats: list[np.ndarray], offsets: list[np.ndarray], n_segments: int,
    what: str,
) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
    """Coerce per-rank CSR buffers to int64 and validate their shape.

    Each offset vector must be ``(n_segments + 1,)``, start at 0, be
    non-decreasing, and end at its flat array's length.  Returns the
    coerced buffers plus the dense segment-size matrix (validation
    computes it anyway, constructors reuse it for consistency checks).
    """
    if len(flats) != len(offsets):
        raise ValueError(f"{what}: need one offset vector per flat array")
    flats = [np.asarray(a, dtype=np.int64) for a in flats]
    offsets = [np.asarray(o, dtype=np.int64) for o in offsets]
    for i, off in enumerate(offsets):
        if off.shape != (n_segments + 1,):
            raise ValueError(
                f"{what}[{i}]: offsets must have shape ({n_segments + 1},),"
                f" got {off.shape}"
            )
    off_mat = np.stack(offsets)
    sizes = np.array([a.size for a in flats], dtype=np.int64)
    counts = np.diff(off_mat, axis=1)
    bad = ((off_mat[:, 0] != 0) | (off_mat[:, -1] != sizes)
           | (counts < 0).any(axis=1))
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"{what}[{i}]: offsets must run non-decreasing from 0 to "
            f"{sizes[i]}, got {offsets[i].tolist()}"
        )
    return flats, offsets, counts


def zero_csr(n_ranks: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """All-empty per-rank CSR buffers (``n_ranks`` empty segments each)."""
    return (
        [np.zeros(0, dtype=np.int64) for _ in range(n_ranks)],
        [np.zeros(n_ranks + 1, dtype=np.int64) for _ in range(n_ranks)],
    )


def grouped_arange(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + sizes[i])``.

    Fully vectorized — the standard "grouped arange" construction used
    to build stream permutations without a Python loop per rank pair.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    prefix = np.cumsum(sizes) - sizes  # exclusive prefix sum
    return (np.repeat(starts - prefix, sizes)
            + np.arange(total, dtype=np.int64))


def stream_perm(counts: np.ndarray, self_first: bool = False) -> np.ndarray:
    """Sender-major → receiver-major permutation of a global stream.

    ``counts[p, q]`` is the number of elements ``p`` sends to ``q``.  The
    send stream concatenates each sender's segments destination-ascending;
    the returned permutation reorders it receiver-major with sources
    ascending (``self_first=True``: each receiver's own kept-local segment
    first, then the other sources ascending — append-order semantics).
    """
    n = counts.shape[0]
    send_base = offsets_from_counts(counts.sum(axis=1))
    row_off = np.zeros((n, n + 1), dtype=np.int64)
    np.cumsum(counts, axis=1, out=row_off[:, 1:])
    # starts[p, q] = global send-stream position of the p -> q segment
    starts = send_base[:n, None] + row_off[:, :n]
    if self_first:
        # source visit order per receiver: itself first, then ascending
        eye = np.arange(n)
        src_order = np.argsort(eye[None, :] != eye[:, None],
                               axis=1, kind="stable")
        receivers = eye[:, None]
        sizes = counts[src_order, receivers].ravel()
        seg_starts = starts[src_order, receivers].ravel()
    else:
        sizes = counts.T.ravel()
        seg_starts = starts.T.ravel()
    return grouped_arange(seg_starts, sizes)


@dataclass
class CompiledPlan:
    """Machine-wide flat form of a CSR-native communication plan.

    ``send_idx[p]`` / ``send_off[p]`` are the plan's own CSR buffers
    (shared, not copied): rank ``p``'s pack selections concatenated
    destination-ascending with the ``(n_ranks + 1,)`` offset vector.
    ``place_idx[p]`` (when the plan places, rather than appends) holds
    the placement slots in *receive-stream* order — the order arrivals
    appear after applying :attr:`perm`.

    ``perm`` maps the global send stream to the global receive stream:
    ``recv_stream = send_stream[perm]``.  ``send_base``/``recv_base``
    delimit each rank's slice of the respective global stream.
    """

    n_ranks: int
    send_idx: list[np.ndarray]
    send_off: list[np.ndarray]
    place_idx: list[np.ndarray] | None
    counts: np.ndarray          # (n, n): counts[p, q] = elements p -> q
    send_base: np.ndarray       # (n + 1,) global send-stream offsets
    recv_base: np.ndarray       # (n + 1,) global receive-stream offsets
    perm: np.ndarray            # send stream -> receive stream
    send_max: np.ndarray        # (n,) max pack index per rank (-1 if none)
    _inv_perm: np.ndarray | None = field(default=None, repr=False)
    _layouts: dict = field(default_factory=dict, repr=False)

    @property
    def total(self) -> int:
        """Elements moved machine-wide (including rank-local segments)."""
        return int(self.perm.size)

    def inv_perm(self) -> np.ndarray:
        """Receive-stream -> send-stream permutation (lazily computed).

        Used by reverse-direction collectives (scatter): values packed in
        receive-stream order are delivered to send-stream positions.
        """
        if self._inv_perm is None:
            inv = np.empty(self.perm.size, dtype=np.int64)
            inv[self.perm] = np.arange(self.perm.size, dtype=np.int64)
            self._inv_perm = inv
        return self._inv_perm

    def recv_slice(self, rank: int, k: int = 1) -> slice:
        """Slice of the global receive stream holding ``rank``'s arrivals.

        ``k`` scales the bounds for flattened (scalar-element) streams.
        """
        return slice(int(self.recv_base[rank]) * k,
                     int(self.recv_base[rank + 1]) * k)

    def send_slice(self, rank: int, k: int = 1) -> slice:
        """Slice of the global send stream packed by ``rank``."""
        return slice(int(self.send_base[rank]) * k,
                     int(self.send_base[rank + 1]) * k)

    # -- composed flat layouts (cached per data layout) -----------------
    #
    # The simulated machine holds every rank's data in one process, so a
    # collective can be executed as ONE flat gather over the per-rank
    # arrays concatenated along axis 0.  The compositions below fold the
    # pack selection, the global permutation, and the row→scalar
    # expansion into single precomputed index vectors, keyed by the
    # concatenation layout (per-rank leading sizes) and the row width
    # ``k`` — both stable across executor calls in steady state.

    def forward_flat(self, sizes: tuple[int, ...], k: int) -> np.ndarray:
        """Scalar gather indices into ravel(concat(source arrays)),
        ordered as the global receive stream."""
        key = ("fwd", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            base = np.zeros(self.n_ranks + 1, dtype=np.int64)
            np.cumsum(np.asarray(sizes, dtype=np.int64), out=base[1:])
            rows = np.concatenate(
                [self.send_idx[p] + base[p] for p in range(self.n_ranks)]
            ) if self.total else np.zeros(0, dtype=np.int64)
            out = _expand(rows[self.perm], k)
            self._layouts[key] = out
        return out

    def reverse_flat(self, sizes: tuple[int, ...], k: int) -> np.ndarray:
        """Scalar gather indices into ravel(concat(ghost arrays)),
        ordered as the global *send* stream (the scatter direction)."""
        key = ("rev", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            base = np.zeros(self.n_ranks + 1, dtype=np.int64)
            np.cumsum(np.asarray(sizes, dtype=np.int64), out=base[1:])
            rows = np.concatenate(
                [self.place_idx[p] + base[p] for p in range(self.n_ranks)]
            ) if self.total else np.zeros(0, dtype=np.int64)
            out = _expand(rows[self.inv_perm()], k)
            self._layouts[key] = out
        return out

    def place_flat(self, k: int) -> list[np.ndarray]:
        """Per-rank scalar placement indices (``place_idx`` expanded)."""
        key = ("place", k)
        out = self._layouts.get(key)
        if out is None:
            out = [_expand(a, k) for a in self.place_idx]
            self._layouts[key] = out
        return out

    def send_flat(self, k: int) -> list[np.ndarray]:
        """Per-rank scalar apply indices (``send_idx`` expanded)."""
        key = ("send", k)
        out = self._layouts.get(key)
        if out is None:
            out = [_expand(a, k) for a in self.send_idx]
            self._layouts[key] = out
        return out

    # -- machine-wide streams (cached; shared-memory export surface) ----
    #
    # The concatenations below give one flat array per plan instead of a
    # per-rank list: ``place_stream`` holds the scalar placement indices
    # of the whole receive stream (rank ``p``'s segment is delimited by
    # ``recv_base[p] * k``), ``send_stream`` the scalar apply indices of
    # the whole send stream (delimited by ``send_base[p] * k``).  Rank
    # kernels slice them by stream bounds, so a backend that runs rank
    # kernels in other processes can materialize each plan as a handful
    # of stable flat buffers — cached here, they keep their identity for
    # the plan's lifetime, which is what makes export-once-per-plan
    # shared-memory caching sound.

    def place_stream(self, k: int) -> np.ndarray:
        """All ranks' scalar placement indices, receive-stream order."""
        key = ("pstream", k)
        out = self._layouts.get(key)
        if out is None:
            parts = self.place_flat(k)
            out = (np.concatenate(parts) if self.total
                   else np.zeros(0, dtype=np.int64))
            self._layouts[key] = out
        return out

    def send_stream(self, k: int) -> np.ndarray:
        """All ranks' scalar apply indices, send-stream order."""
        key = ("sstream", k)
        out = self._layouts.get(key)
        if out is None:
            parts = self.send_flat(k)
            out = (np.concatenate(parts) if self.total
                   else np.zeros(0, dtype=np.int64))
            self._layouts[key] = out
        return out

    # -- destination-sorted compositions (fused one-pass executors) -----
    #
    # Sorting each rank's (source, destination) index pairs by
    # destination turns the apply phase's scattered stores into
    # ascending ones — and, when a rank's slots are dense (0..n-1 in
    # order, the common case for exact-size ghost buffers, appends and
    # remaps), into one contiguous write.  The argsort is *stable*, so
    # duplicate destinations keep their stream order and a fancy assign
    # (last write wins) lands bitwise-identical values; reordering is
    # only ever legal for placement, never for combiners, whose fold
    # order the unsorted vectors preserve.

    def forward_sorted(
        self, sizes: tuple[int, ...], k: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """:meth:`forward_flat` ∘ :meth:`place_stream`, sorted by
        destination per receiving rank; ``(src, dst)`` with ``dst`` of
        ``None`` when every rank's slots are dense."""
        key = ("sfwd", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            out = _sort_segments(self.forward_flat(sizes, k),
                                 self.place_stream(k), self.recv_base, k)
            self._layouts[key] = out
        return out

    def reverse_sorted(
        self, sizes: tuple[int, ...], k: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """:meth:`reverse_flat` ∘ :meth:`send_stream`, sorted by
        destination per sending rank (the scatter direction)."""
        key = ("srev", sizes, k)
        out = self._layouts.get(key)
        if out is None:
            out = _sort_segments(self.reverse_flat(sizes, k),
                                 self.send_stream(k), self.send_base, k)
            self._layouts[key] = out
        return out


class CompiledSchedule(CompiledPlan):
    """Compiled form of :class:`~repro.core.schedule.Schedule`."""


class CompiledLightweightSchedule(CompiledPlan):
    """Compiled form of a light-weight (append-order) schedule.

    ``place_idx`` is ``None``: arrivals append, they are never permuted
    into prescribed slots.  The receive stream for rank ``p`` is ordered
    kept-local first, then arrivals by source rank — matching
    :func:`repro.core.lightweight.scatter_append` semantics exactly.
    """


class CompiledRemapPlan(CompiledPlan):
    """Compiled form of :class:`~repro.core.remap.RemapPlan`."""


def _expand(rows: np.ndarray, k: int) -> np.ndarray:
    """Row indices → scalar indices for a raveled ``(n, k)`` array."""
    if k == 1:
        return rows
    return (rows[:, None] * k + np.arange(k, dtype=np.int64)).reshape(-1)


def _sort_segments(
    src: np.ndarray, dst: np.ndarray, base: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray | None]:
    """Sort each rank's ``(src, dst)`` index pairs by destination.

    ``base`` is the row-offset vector delimiting rank segments in the
    stream (``recv_base`` or ``send_base``).  The per-segment argsort is
    stable so duplicate destinations keep stream order; a fancy assign
    through the sorted pair is therefore bitwise-identical to the
    unsorted one.  Returns ``(sorted_src, sorted_dst)``; ``sorted_dst``
    is ``None`` when every segment is dense (``0..len-1`` in order), in
    which case the apply collapses to one contiguous write per rank.
    """
    sf = np.empty_like(src)
    sp = np.empty_like(dst)
    dense = True
    for p in range(base.size - 1):
        lo, hi = int(base[p]) * k, int(base[p + 1]) * k
        seg_dst = dst[lo:hi]
        order = np.argsort(seg_dst, kind="stable")
        seg = seg_dst[order]
        sp[lo:hi] = seg
        sf[lo:hi] = src[lo:hi][order]
        if dense:
            n = hi - lo
            dense = (
                n == 0
                or (
                    int(seg[0]) == 0
                    and int(seg[-1]) == n - 1
                    and np.array_equal(seg, np.arange(n, dtype=seg.dtype))
                )
            )
    return sf, (None if dense else sp)


def _compile(
    cls,
    n: int,
    send_idx: list[np.ndarray],
    send_off: list[np.ndarray],
    place_idx: list[np.ndarray] | None,
    self_first: bool = False,
) -> CompiledPlan:
    """Derive the machine-wide view of CSR-native plan buffers.

    The per-rank ``send_idx`` / ``send_off`` / ``place_idx`` arrays are
    shared with the plan (plans are immutable after construction); only
    the count matrix, stream bases and the global permutation are new.
    """
    counts = csr_counts(send_off)
    send_max = np.array(
        [int(a.max()) if a.size else -1 for a in send_idx], dtype=np.int64
    )
    send_base = offsets_from_counts(counts.sum(axis=1))
    recv_base = offsets_from_counts(counts.sum(axis=0))
    return cls(
        n_ranks=n,
        send_idx=send_idx,
        send_off=send_off,
        place_idx=place_idx,
        counts=counts,
        send_base=send_base,
        recv_base=recv_base,
        perm=stream_perm(counts, self_first=self_first),
        send_max=send_max,
    )


def _cached(sched, builder):
    plan = getattr(sched, _CACHE_ATTR, None)
    if plan is None:
        plan = builder()
        setattr(sched, _CACHE_ATTR, plan)
    return plan


def compile_schedule(sched) -> CompiledSchedule:
    """Machine-wide view of a :class:`Schedule`; cached on the schedule.

    The schedule's flat buffers are shared directly: ``recv_slots`` is
    already the receive stream's placement order (source-ascending).
    """
    return _cached(
        sched,
        lambda: _compile(
            CompiledSchedule, sched.n_ranks, sched.send_indices,
            sched.send_offsets, sched.recv_slots,
        ),
    )


def compile_lightweight_schedule(sched) -> CompiledLightweightSchedule:
    """Machine-wide view of a :class:`LightweightSchedule`; cached."""
    return _cached(
        sched,
        lambda: _compile(
            CompiledLightweightSchedule, sched.n_ranks, sched.send_sel,
            sched.send_offsets, None, self_first=True,
        ),
    )


def compile_remap_plan(plan) -> CompiledRemapPlan:
    """Machine-wide view of a :class:`RemapPlan`; cached on the plan."""
    return _cached(
        plan,
        lambda: _compile(
            CompiledRemapPlan, plan.n_ranks, plan.send_sel,
            plan.send_offsets, plan.place_sel,
        ),
    )


# ---------------------------------------------------------------------
# plan fusion
# ---------------------------------------------------------------------
#: stage kinds whose data flows send stream → receive stream; the rest
#: ("scatter", with or without a combiner) flow the reverse direction
FORWARD_KINDS = frozenset({"gather", "append", "remap"})

#: every stage kind a fused pipeline understands
STAGE_KINDS = FORWARD_KINDS | {"scatter"}


@dataclass(frozen=True)
class FusedStage:
    """One collective inside a fused pipeline.

    ``kind`` names the executor primitive (``"gather"``, ``"scatter"``
    — with ``op`` for the combining variant — ``"append"``,
    ``"remap"``); ``sched`` is the CSR-native plan object the reference
    backends dispatch on, ``plan`` its compiled machine-wide view, and
    ``op`` the combining ufunc for scatter stages (``None`` overwrites).
    """

    kind: str
    sched: Any
    plan: CompiledPlan
    op: Any = None


@dataclass
class StageBind:
    """Per-call data binding for one fused stage.

    ``sources`` are the arrays the stage packs from (local data for the
    forward kinds, ghost buffers for scatter); ``dests`` are the arrays
    it writes into — ``None`` for the value-returning kinds (append,
    remap), whose outputs the backend allocates.
    """

    sources: list
    dests: list | None = None


class _StageLayout:
    """One stage's composed index vectors for a fixed data layout.

    Each stage collapses to a single composed pass — destination slots
    fancy-assigned straight from the flattened source concat, with no
    intermediate stream.  ``src_index`` maps destination stream
    positions to source scalars; ``dst_index`` maps them into the
    per-rank destination buffers (``None`` for appends, which fill
    contiguously).  Assign-mode stages additionally carry the
    destination-sorted pair ``(sf, sp)`` from the plan's
    ``forward_sorted`` / ``reverse_sorted`` caches: stores land in
    ascending order (``sp`` is ``None`` when dense — one contiguous
    write).  Combining stages never sort; the unsorted vectors preserve
    the ufunc's fold order bit for bit.
    """

    __slots__ = ("mode", "k", "dtype", "op", "base", "bounds",
                 "src_index", "dst_index", "sf", "sp")

    def __init__(self, stage: FusedStage, k: int, dtype: np.dtype,
                 sizes: tuple[int, ...]):
        plan = stage.plan
        self.k = k
        self.dtype = dtype
        self.op = stage.op
        if stage.kind in FORWARD_KINDS:
            # local data, send order → receive stream → placement slots
            self.src_index = plan.forward_flat(sizes, k)
            self.base = plan.recv_base
            if stage.kind == "append":
                self.dst_index = None
                self.mode = "fill"
                self.sf, self.sp = self.src_index, None
            else:
                self.dst_index = plan.place_stream(k)
                self.mode = "assign"
                self.sf, self.sp = plan.forward_sorted(sizes, k)
        else:
            # ghost data, receive order → send stream → local elements
            self.src_index = plan.reverse_flat(sizes, k)
            self.base = plan.send_base
            self.dst_index = plan.send_stream(k)
            if stage.op is None:
                self.mode = "assign"
                self.sf, self.sp = plan.reverse_sorted(sizes, k)
            else:
                self.mode = "accum"
                self.sf = self.sp = None
        # scalar stream bounds as a plain list: the apply kernel's rank
        # loop slices with these every call
        self.bounds = [int(b) * k for b in self.base.tolist()]


class _FusedLayout:
    """All per-stage layouts for one data-layout key, plus the static
    half of the shippable rank-kernel payload.

    ``plans`` (the stable index vectors, exported to shared memory once
    per plan), ``consts`` and ``work`` depend only on the layout key, so
    they are built here once and reused every call; the executor adds
    the per-call halves (``data``, ``inout``) on top.
    """

    __slots__ = ("stages", "plans", "consts", "work")

    def __init__(self, stages: list[_StageLayout]):
        self.stages = stages
        self.plans = {}
        ks, modes, ops, bases, dense = [], [], [], [], []
        self.work = 0
        for s, st in enumerate(stages):
            if st.mode == "accum":
                self.plans[f"sf{s}"] = st.src_index
                self.plans[f"ap{s}"] = st.dst_index
                dense.append(False)
            else:
                self.plans[f"sf{s}"] = st.sf
                if st.sp is not None:
                    self.plans[f"ap{s}"] = st.sp
                dense.append(st.sp is None)
            ks.append(st.k)
            modes.append(st.mode)
            ops.append(None if st.op is None
                       else getattr(st.op, "__name__", None))
            bases.append(tuple(st.bounds))
            self.work += st.src_index.size * st.dtype.itemsize
        self.consts = {"n_stages": len(stages), "ks": tuple(ks),
                       "modes": tuple(modes), "ops": tuple(ops),
                       "bounds": tuple(bases), "dense": tuple(dense)}


@dataclass
class FusedPlan:
    """A chain of compiled plans executed as one combined pipeline.

    The stages keep their individual count matrices and accounting —
    traffic and clocks are charged per stage, identical to the unfused
    sequence — but a backend's fused executor moves each stage's data
    in a single composed pass (destination slots assigned straight from
    the flattened sources through one permutation), instead of one full
    gather → exchange → apply round per phase.  Layouts (the per-stage
    composed index vectors) are derived lazily per
    ``(row width, dtype, source sizes)`` chain and cached for the
    plan's lifetime, like the single-plan ``_layouts`` caches they
    borrow from.
    """

    stages: tuple[FusedStage, ...]
    _layouts: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not self.stages:
            raise ValueError("a fused plan needs at least one stage")
        n = self.stages[0].plan.n_ranks
        for stage in self.stages:
            if stage.kind not in STAGE_KINDS:
                raise ValueError(f"unknown fused stage kind {stage.kind!r}")
            if stage.plan.n_ranks != n:
                raise ValueError("fused stages span different machines")
        self.stages = tuple(self.stages)

    @property
    def n_ranks(self) -> int:
        return self.stages[0].plan.n_ranks

    def matches(self, stages) -> bool:
        """Whether this fused plan was built from exactly ``stages``
        (same compiled plans by identity, same kinds and combiners) —
        the staleness check for cache layers keyed by loop id."""
        if len(stages) != len(self.stages):
            return False
        return all(
            mine.plan is theirs.plan and mine.kind == theirs.kind
            and mine.op is theirs.op
            for mine, theirs in zip(self.stages, stages)
        )

    def layout(self, key: tuple) -> _FusedLayout:
        """Per-stage composed layouts (plus the static kernel payload)
        for one ``((k, dtype, sizes), ...)`` key."""
        out = self._layouts.get(key)
        if out is None:
            out = _FusedLayout([
                _StageLayout(stage, k, np.dtype(dtype), sizes)
                for stage, (k, dtype, sizes) in zip(self.stages, key)
            ])
            self._layouts[key] = out
        return out


def compile_fused(stages) -> FusedPlan:
    """Fused view of a stage chain; cached on the lead compiled plan.

    The cache key is the chain identity — plan object ids, kinds and
    combiner names.  The cached :class:`FusedPlan` holds strong
    references to every stage plan, so the ids cannot be recycled while
    the entry is alive; a ``matches`` check guards against it anyway.
    """
    stages = tuple(stages)
    lead = stages[0].plan
    key = tuple(
        (s.kind, id(s.plan),
         None if s.op is None else getattr(s.op, "__name__", repr(s.op)))
        for s in stages
    )
    cache = getattr(lead, _FUSED_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(lead, _FUSED_CACHE_ATTR, cache)
    fused = cache.get(key)
    if fused is None or not fused.matches(stages):
        fused = FusedPlan(stages=stages)
        cache[key] = fused
    return fused
