"""Loop-iteration partitioning (paper Phases C and D).

Phase C decides which rank executes each loop iteration.  CHAOS defaults
to the *almost-owner-computes* rule: each iteration goes to the rank that
owns a majority of the data elements it touches (biased toward reducing
communication); the plain *owner-computes* rule (owner of the left-hand
side reference) is also provided.

Phase D then remaps the indirection-array slices — iteration ``i``'s
entries ``ia(i)``, ``ib(i)`` move to the rank executing ``i``.  Because
iteration order within a rank is irrelevant for the reduction loops CHAOS
targets, the move uses a light-weight schedule, and the same schedule can
remap any number of per-iteration arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ensure_context
from repro.core.lightweight import (
    LightweightSchedule,
    build_lightweight_schedule,
    scatter_append,
)
from repro.core.translation import TranslationTable
from repro.sim.machine import Machine


@dataclass
class IterationAssignment:
    """Result of iteration partitioning.

    ``dest[p]`` is the executing rank chosen for each iteration currently
    resident on rank ``p``; ``schedule`` is the light-weight move plan that
    carries per-iteration data (indirection arrays first of all) to those
    ranks; ``counts`` is the resulting number of iterations per rank.
    """

    dest: list[np.ndarray]
    schedule: LightweightSchedule
    counts: np.ndarray

    def remap_iteration_data(
        self, ctx, arrays: list[np.ndarray],
        category: str = "remap",
    ) -> list[np.ndarray]:
        """Move one per-iteration array set to the executing ranks.

        The context's backend executes the data transport, exactly as in
        :func:`scatter_append`.
        """
        ctx = ensure_context(ctx, "remap_iteration_data")
        return scatter_append(ctx, self.schedule, arrays, category=category)


def _majority_vote(owner_rows: np.ndarray) -> np.ndarray:
    """Majority owner per column of a (k, n) owner matrix.

    Ties break toward the earliest row that attains the maximum count —
    i.e. toward the owner of the first reference, matching the natural
    owner-computes fallback.  O(k^2 n), fine for the small k (2–4
    indirection arrays per loop) that irregular loops have.
    """
    k, n = owner_rows.shape
    if k == 1:
        return owner_rows[0].copy()
    scores = np.zeros((k, n), dtype=np.int64)
    for j in range(k):
        for i in range(k):
            scores[j] += owner_rows[i] == owner_rows[j]
    best = np.argmax(scores, axis=0)  # argmax takes first maximum: our tie-break
    return owner_rows[best, np.arange(n)]


def partition_iterations(
    ctx,
    ttable: TranslationTable,
    accesses: list[list[np.ndarray]],
    rule: str = "almost-owner-computes",
    category: str = "partition",
) -> IterationAssignment:
    """Assign loop iterations to ranks and build the Phase-D move plan.

    Parameters
    ----------
    ttable:
        Translation table of the data arrays the loop indexes.
    accesses:
        ``accesses[p]`` is the list of indirection-array slices currently
        resident on rank ``p`` — one array per indirection array in the
        loop, each of length ``n_iterations_on_p``, containing *global*
        data indices.  For ``rule="owner-computes"`` the first array is
        taken to be the left-hand-side reference.
    rule:
        ``"almost-owner-computes"`` (majority) or ``"owner-computes"``.

    The context's backend performs the translation-table dereference.
    """
    ctx = ensure_context(ctx, "partition_iterations")
    machine = ctx.machine
    if rule not in ("almost-owner-computes", "owner-computes"):
        raise ValueError(f"unknown iteration-partitioning rule {rule!r}")
    machine.check_per_rank(accesses, "accesses")

    # Translate every reference to its owner.  (Owner lookups go through
    # the translation table and are charged accordingly.)
    flat_queries: list[np.ndarray] = []
    for p in machine.ranks():
        arrays = accesses[p]
        if not arrays:
            flat_queries.append(np.zeros(0, dtype=np.int64))
            continue
        lens = {np.asarray(a).shape[0] for a in arrays}
        if len(lens) > 1:
            raise ValueError(
                f"rank {p}: indirection arrays disagree on iteration count "
                f"{sorted(lens)}"
            )
        flat_queries.append(
            np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays])
        )
    owners_flat, _ = ttable.dereference(ctx, flat_queries, category=category)

    dest: list[np.ndarray] = []
    for p in machine.ranks():
        arrays = accesses[p]
        if not arrays or np.asarray(arrays[0]).shape[0] == 0:
            dest.append(np.zeros(0, dtype=np.int64))
            continue
        k = len(arrays)
        n_iter = np.asarray(arrays[0]).shape[0]
        owner_rows = owners_flat[p].reshape(k, n_iter)
        machine.charge_memops(p, k * n_iter, category)
        if rule == "owner-computes":
            dest.append(owner_rows[0].copy())
        else:
            dest.append(_majority_vote(owner_rows))

    schedule = build_lightweight_schedule(ctx, dest, category=category)
    counts = np.array(
        [schedule.recv_total(p) for p in machine.ranks()], dtype=np.int64
    )
    return IterationAssignment(dest=dest, schedule=schedule, counts=counts)


def block_iteration_slices(n_iterations: int, machine: Machine) -> list[slice]:
    """Initial BLOCK ownership of iterations 0..n-1 (pre-partitioning)."""
    base, extra = divmod(n_iterations, machine.n_ranks)
    out = []
    start = 0
    for p in machine.ranks():
        size = base + (1 if p < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


def split_by_block(array: np.ndarray, machine: Machine) -> list[np.ndarray]:
    """Split a global per-iteration array into BLOCK per-rank slices."""
    arr = np.asarray(array)
    return [arr[s] for s in block_iteration_slices(arr.shape[0], machine)]
